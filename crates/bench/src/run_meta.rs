//! The versioned `results/run_meta.json` document written by
//! `repro --metrics`.
//!
//! One file captures everything needed to interpret (and re-run) a
//! reproduction: a **manifest** (seed, scale, threads, git revision,
//! config digest), the scheduler / cache statistics from the
//! [`PlanReport`], the telemetry counters and training series from the
//! drained [`Telemetry`], per-group span statistics, and per-job timings
//! grouped by artifact / cell / provider. It subsumes the old
//! hand-rolled `bench_repro.json` (same timing groups, plus provenance
//! and telemetry), and `schema_version` is bumped on any breaking shape
//! change so downstream tooling can refuse files it does not understand.

use kcb_core::experiment::plan::PlanReport;
use kcb_obs::Telemetry;
use serde_json::{json, Value};

/// Version of the `run_meta.json` shape.
///
/// v2: `cache` gained `ckpt_hits` / `ckpt_misses`, and a top-level
/// `checkpoints` group lists every persistent checkpoint lookup.
///
/// v3: `span_stats` rows gained `p99_s`, and `cache` gained
/// `provider_skips` (provider jobs that skipped eager materialization
/// because their checkpoint was known-fresh).
///
/// v4: `manifest` gained `mode` naming the run flavour (`"artifacts"`,
/// `"bench-query"`, `"serve"`, `"serve-bench"`), matching the serving
/// subcommands added alongside `results/bench_serve.json`.
///
/// v5: a top-level `journal` group records what the run journal did —
/// `enabled`, records `appended` (fsynced this run), jobs `replayed`
/// from an interrupted run, whether this was a `resume`, and
/// damaged-suffix `warnings` — matching the journaled/resumable runs
/// under `results/runs/`.
///
/// v6: a top-level `serve` group (null outside serving modes) carries
/// the live-telemetry summary of a `serve` / `serve-bench` run: request
/// counters (`served` / `shed` / `errors`), the per-verb mix, and the
/// end-to-end latency snapshot from the daemon's lock-free histograms.
///
/// v7: `manifest.mode` gained `"sweep"`, and a top-level `sweep` group
/// (null outside sweep mode) summarises the variant grid: the normalised
/// grid spec, variant / lab counts, total vs shared vs unique job counts
/// from the dedup plan, journal-replayed variants, and — when
/// `--baseline` measured K sequential runs — the speedup ratio.
pub const SCHEMA_VERSION: u64 = 7;

/// Everything `run_meta.json` is built from.
pub struct RunMetaInputs<'a> {
    /// Master seed of the run.
    pub seed: u64,
    /// Ontology scale of the run.
    pub scale: f64,
    /// Scheduler worker threads requested.
    pub threads: usize,
    /// Whether the tiny `--fast` configuration was used.
    pub fast: bool,
    /// Run flavour: `"artifacts"`, `"bench-query"`, `"serve"` or
    /// `"serve-bench"`.
    pub mode: &'a str,
    /// End-to-end wall-clock seconds (lab construction through export).
    pub total_seconds: f64,
    /// FNV-64 digest of the full lab configuration (hex).
    pub config_digest: String,
    /// Git revision the binary ran from (`"unknown"` outside a checkout).
    pub git_rev: String,
    /// Scheduler + cache report from the run.
    pub report: &'a PlanReport,
    /// Drained telemetry (empty when recording was off).
    pub telemetry: &'a Telemetry,
    /// Serving-mode live-telemetry summary (`None` → emitted as `null`):
    /// counters, verb mix and latency snapshot from the daemon's
    /// `kcb-obs::live` registry.
    pub serve: Option<Value>,
    /// Sweep-mode grid summary (`None` → emitted as `null`): grid spec,
    /// variant / lab counts, shared-vs-unique job counts and speedup.
    pub sweep: Option<Value>,
}

/// FNV-1a 64-bit hash, hex-encoded — a stable, dependency-free digest for
/// the config manifest field.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// The current checkout's short revision, or `"unknown"`.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Per-job timing rows for labels under `prefix` (prefix stripped).
fn job_group(report: &PlanReport, prefix: &str) -> Vec<Value> {
    report
        .scheduler
        .jobs
        .iter()
        .filter(|j| j.label.starts_with(prefix))
        .map(|j| {
            json!({
                "label": j.label.strip_prefix(prefix).unwrap_or(&j.label),
                "kind": j.kind,
                "seconds": j.seconds,
                "start": j.start,
                "end": j.end,
                "worker": j.worker,
            })
        })
        .collect()
}

/// Builds the full `run_meta.json` document.
///
/// (The vendored `json!` macro takes expressions, not nested object
/// literals, so each sub-object is built separately.)
pub fn run_meta_json(inp: &RunMetaInputs<'_>) -> Value {
    let r = inp.report;
    let t = inp.telemetry;
    let counters =
        Value::Object(t.counters.iter().map(|(k, &v)| (k.clone(), json!(v))).collect());
    let series =
        Value::Object(t.series.iter().map(|(k, v)| (k.clone(), json!(v))).collect());
    let span_stats = Value::Object(
        kcb_obs::profile::span_stats(t)
            .into_iter()
            .map(|(k, s)| {
                let row = json!({
                    "count": s.count,
                    "total_s": s.total_s,
                    "self_s": s.self_s,
                    "p50_s": s.p50_s,
                    "p95_s": s.p95_s,
                    "p99_s": s.p99_s,
                    "max_s": s.max_s,
                });
                (k, row)
            })
            .collect(),
    );
    let manifest = json!({
        "seed": inp.seed,
        "scale": inp.scale,
        "threads": inp.threads,
        "hardware_threads": kcb_lm::pool::hardware_threads(),
        "fast": inp.fast,
        "mode": inp.mode,
        "git_rev": inp.git_rev,
        "config_digest": inp.config_digest,
    });
    let scheduler = json!({
        "workers": r.scheduler.workers,
        "jobs": r.scheduler.jobs.len(),
        "steals": r.scheduler.steals,
        "wall_seconds": r.scheduler.wall_seconds,
    });
    let encoding_cache = json!({
        "hits": r.encoding_hits,
        "misses": r.encoding_misses,
        "entries": r.encoding_entries,
        "contended": r.encoding_contended,
    });
    let checkpoints: Vec<Value> = r
        .checkpoints
        .iter()
        .map(|e| {
            json!({
                "provider": e.provider,
                "key": e.key,
                "hit": e.hit,
                "bytes": e.bytes,
            })
        })
        .collect();
    let journal = json!({
        "enabled": r.journal.enabled,
        "appended": r.journal.appended,
        "replayed": r.journal.replayed,
        "resume": r.journal.resume,
        "warnings": r.journal.warnings,
    });
    let serve = inp.serve.clone().unwrap_or(Value::Null);
    let sweep = inp.sweep.clone().unwrap_or(Value::Null);
    json!({
        "schema_version": SCHEMA_VERSION,
        "manifest": manifest,
        "total_seconds": inp.total_seconds,
        "scheduler": scheduler,
        "cache": r.cache,
        "encoding_cache": encoding_cache,
        "journal": journal,
        "serve": serve,
        "sweep": sweep,
        "checkpoints": checkpoints,
        "counters": counters,
        "series": series,
        "span_stats": span_stats,
        "artifacts": job_group(r, "artifact:"),
        "cells": job_group(r, "cell:"),
        "providers": job_group(r, "provider:"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_core::sched::{JobReport, RunReport};

    fn sample_inputs(report: &PlanReport, telemetry: &Telemetry) -> Value {
        run_meta_json(&RunMetaInputs {
            seed: 42,
            scale: 0.01,
            threads: 4,
            fast: true,
            mode: "artifacts",
            total_seconds: 1.25,
            config_digest: fnv64_hex(b"cfg"),
            git_rev: "abc1234".to_string(),
            report,
            telemetry,
            serve: None,
            sweep: None,
        })
    }

    fn sample_report() -> PlanReport {
        let job = |label: &str, kind: &'static str, start: f64, end: f64, worker: usize| {
            JobReport { label: label.to_string(), kind, seconds: end - start, start, end, worker }
        };
        PlanReport {
            scheduler: RunReport {
                workers: 4,
                jobs: vec![
                    job("provider:ontology", "par", 0.0, 0.1, 1),
                    job("cell:rf|1|0.5", "par", 0.1, 0.4, 2),
                    job("artifact:fig3", "driver", 0.4, 0.5, 0),
                ],
                steals: 3,
                wall_seconds: 0.5,
            },
            cache: Default::default(),
            encoding_hits: 10,
            encoding_misses: 2,
            encoding_entries: 2,
            encoding_contended: 1,
            checkpoints: vec![kcb_core::ckpt::CkptEvent {
                provider: "embed-glove".to_string(),
                key: "00ff00ff00ff00ff".to_string(),
                hit: true,
                bytes: 1024,
            }],
            journal: kcb_core::experiment::plan::JournalStats {
                enabled: true,
                appended: 3,
                replayed: 2,
                resume: true,
                warnings: 0,
            },
        }
    }

    #[test]
    fn document_has_the_versioned_shape() {
        let mut t = Telemetry::default();
        t.counters.insert("dbscan.probes".into(), 7);
        t.series.insert("lm.bert.pretrain.loss".into(), vec![2.0, 1.5]);
        t.spans.push(kcb_obs::SpanEvent {
            cat: "cell",
            name: "cell:rf|1|0.5".into(),
            tid: 1,
            start_us: 100_000,
            dur_us: 300_000,
            args: Vec::new(),
        });
        let doc = sample_inputs(&sample_report(), &t);

        assert_eq!(doc["schema_version"], json!(SCHEMA_VERSION));
        assert_eq!(doc["manifest"]["seed"], json!(42));
        assert_eq!(doc["manifest"]["git_rev"], json!("abc1234"));
        assert_eq!(doc["manifest"]["mode"], json!("artifacts"));
        assert_eq!(doc["manifest"]["config_digest"], json!(fnv64_hex(b"cfg")));
        assert_eq!(doc["scheduler"]["steals"], json!(3));
        assert_eq!(doc["encoding_cache"]["contended"], json!(1));
        assert_eq!(doc["cache"]["ckpt_hits"], json!(0));
        assert_eq!(doc["cache"]["provider_skips"], json!(0));
        assert_eq!(doc["span_stats"]["cell:rf"]["p99_s"], doc["span_stats"]["cell:rf"]["max_s"]);
        assert_eq!(doc["journal"]["enabled"], json!(true));
        assert_eq!(doc["journal"]["appended"], json!(3));
        assert_eq!(doc["journal"]["replayed"], json!(2));
        assert_eq!(doc["journal"]["resume"], json!(true));
        assert_eq!(doc["journal"]["warnings"], json!(0));
        assert_eq!(doc["serve"], Value::Null, "non-serving runs carry a null serve group");
        assert_eq!(doc["sweep"], Value::Null, "non-sweep runs carry a null sweep group");
        assert_eq!(doc["checkpoints"][0]["provider"], json!("embed-glove"));
        assert_eq!(doc["checkpoints"][0]["hit"], json!(true));
        assert_eq!(doc["counters"]["dbscan.probes"], json!(7));
        assert_eq!(doc["series"]["lm.bert.pretrain.loss"], json!([2.0, 1.5]));
        assert_eq!(doc["span_stats"]["cell:rf"]["count"], json!(1));
        // Groups strip their prefix and carry the placement fields.
        assert_eq!(doc["artifacts"][0]["label"], json!("fig3"));
        assert_eq!(doc["artifacts"][0]["worker"], json!(0));
        assert_eq!(doc["cells"][0]["start"], json!(0.1));
        assert_eq!(doc["providers"][0]["label"], json!("ontology"));
        // The document must round-trip the zero-dependency validator.
        let text = serde_json::to_string_pretty(&doc).unwrap();
        kcb_obs::json::validate(&text).unwrap();
    }

    #[test]
    fn fnv_digest_is_stable_and_input_sensitive() {
        assert_eq!(fnv64_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv64_hex(b"kcb"), fnv64_hex(b"kcb"));
        assert_ne!(fnv64_hex(b"kcb"), fnv64_hex(b"kcc"));
    }

    #[test]
    fn serving_runs_embed_their_live_summary() {
        let t = Telemetry::default();
        let report = sample_report();
        let summary = json!({
            "served": 120,
            "shed": 4,
            "errors": 1,
            "p99_us": 2100,
        });
        let doc = run_meta_json(&RunMetaInputs {
            seed: 42,
            scale: 0.01,
            threads: 4,
            fast: true,
            mode: "serve",
            total_seconds: 9.0,
            config_digest: fnv64_hex(b"cfg"),
            git_rev: "abc1234".to_string(),
            report: &report,
            telemetry: &t,
            serve: Some(summary),
            sweep: None,
        });
        assert_eq!(doc["schema_version"], json!(7));
        assert_eq!(doc["manifest"]["mode"], json!("serve"));
        assert_eq!(doc["serve"]["served"], json!(120));
        assert_eq!(doc["serve"]["p99_us"], json!(2100));
        let text = serde_json::to_string(&doc).unwrap();
        kcb_obs::json::validate(&text).unwrap();
    }

    #[test]
    fn sweep_runs_embed_their_grid_summary() {
        let t = Telemetry::default();
        let report = sample_report();
        let summary = json!({
            "grid": "scenarios=0;paradigms=sup,icl;model=random;adapt=naive",
            "variants": 4,
            "labs": 2,
            "total_jobs": 30,
            "shared_jobs": 12,
            "unique_jobs": 18,
            "replayed_variants": 0,
            "speedup_vs_sequential": 2.5,
        });
        let doc = run_meta_json(&RunMetaInputs {
            seed: 42,
            scale: 0.01,
            threads: 4,
            fast: true,
            mode: "sweep",
            total_seconds: 9.0,
            config_digest: fnv64_hex(b"cfg"),
            git_rev: "abc1234".to_string(),
            report: &report,
            telemetry: &t,
            serve: None,
            sweep: Some(summary),
        });
        assert_eq!(doc["manifest"]["mode"], json!("sweep"));
        assert_eq!(doc["sweep"]["variants"], json!(4));
        assert_eq!(doc["sweep"]["shared_jobs"], json!(12));
        assert_eq!(doc["serve"], Value::Null);
        let text = serde_json::to_string(&doc).unwrap();
        kcb_obs::json::validate(&text).unwrap();
    }

    #[test]
    fn empty_telemetry_still_yields_a_valid_document() {
        let doc = sample_inputs(&sample_report(), &Telemetry::default());
        assert_eq!(doc["counters"], json!({}));
        assert_eq!(doc["span_stats"], json!({}));
        let text = serde_json::to_string(&doc).unwrap();
        kcb_obs::json::validate(&text).unwrap();
    }
}
