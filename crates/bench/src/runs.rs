//! The `repro runs [list|show|diff]` query surface.
//!
//! Renders the run index (`results/runs/index.jsonl`, see
//! [`kcb_core::journal`]) for humans: `list` folds the append-only index
//! to the latest manifest per run (so an interrupted run shows up as
//! still-`running`), `show` prints one manifest in full, and `diff`
//! compares two manifests field by field — including per-artifact
//! checksums, which is how "same config, same bytes?" is answered without
//! re-running anything. Everything here is pure rendering over loaded
//! manifests, so the binary only picks an exit code.

use kcb_core::journal::{self, diff_manifests, JobRecord, RunManifest};
use kcb_util::fmt::Table;
use std::collections::BTreeMap;

/// Renders the `runs list` table from folded manifests (newest first).
pub fn render_list(folded: &[RunManifest]) -> String {
    if folded.is_empty() {
        return "no recorded runs (run `repro <artifacts>` first)\n".to_string();
    }
    let mut t = Table::new(
        format!("Recorded runs ({})", folded.len()),
        &["run id", "outcome", "seed", "scale", "threads", "ids", "jobs", "replayed", "wall s"],
    )
    .numeric_after(6);
    for m in folded {
        let mut ids = m.ids.join(" ");
        if ids.len() > 40 {
            ids.truncate(37);
            ids.push_str("...");
        }
        t.row(vec![
            m.run_id.clone(),
            if m.resume { format!("{} (resumed)", m.outcome) } else { m.outcome.clone() },
            m.seed.to_string(),
            m.scale.to_string(),
            m.threads.to_string(),
            ids,
            m.jobs_run.to_string(),
            m.jobs_replayed.to_string(),
            format!("{:.1}", m.wall_s),
        ]);
    }
    t.render()
}

/// Finds one manifest by run id: exact match first, then a unique prefix.
/// Errors name the needle and, on ambiguity, every candidate.
pub fn resolve<'a>(folded: &'a [RunManifest], needle: &str) -> Result<&'a RunManifest, String> {
    if let Some(m) = folded.iter().find(|m| m.run_id == needle) {
        return Ok(m);
    }
    let hits: Vec<&RunManifest> =
        folded.iter().filter(|m| m.run_id.starts_with(needle)).collect();
    match hits.as_slice() {
        [one] => Ok(one),
        [] => Err(format!("no run matches '{needle}' (see `repro runs list`)")),
        many => Err(format!(
            "'{needle}' is ambiguous: {}",
            many.iter().map(|m| m.run_id.as_str()).collect::<Vec<_>>().join(", ")
        )),
    }
}

/// Renders one full manifest as aligned `key  value` lines.
pub fn render_show(m: &RunManifest) -> String {
    let mut t = Table::new(format!("Run {}", m.run_id), &["field", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("config_digest", m.config_digest.clone()),
        ("outcome", m.outcome.clone()),
        ("seed", m.seed.to_string()),
        ("scale", m.scale.to_string()),
        ("threads", m.threads.to_string()),
        ("fast", m.fast.to_string()),
        ("ids", m.ids.join(" ")),
        ("started_unix_ms", m.started_unix_ms.to_string()),
        ("updated_unix_ms", m.updated_unix_ms.to_string()),
        ("jobs_run", m.jobs_run.to_string()),
        ("jobs_replayed", m.jobs_replayed.to_string()),
        ("resume", m.resume.to_string()),
        ("wall_s", format!("{:.3}", m.wall_s)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    for (id, fnv) in &m.artifacts {
        t.row(vec![format!("artifact:{id}"), fnv.clone()]);
    }
    t.render()
}

/// Renders the field-by-field diff of two manifests; identical manifests
/// (up to timestamps and run id) say so explicitly.
pub fn render_diff(a: &RunManifest, b: &RunManifest) -> String {
    let rows = diff_manifests(a, b);
    if rows.is_empty() {
        return format!("runs {} and {} are identical (config, jobs, artifact checksums)\n",
            a.run_id, b.run_id);
    }
    let mut t = Table::new(
        format!("Diff {} vs {}", a.run_id, b.run_id),
        &["field", a.run_id.as_str(), b.run_id.as_str()],
    );
    for (field, va, vb) in rows {
        t.row(vec![field, va, vb]);
    }
    t.render()
}

/// Folds a journal's records into `job label → input entries`. Records
/// are `name=key` provenance pairs; on a resumed run the same label can
/// appear more than once, and the last completion wins.
pub fn fold_inputs(records: &[JobRecord]) -> BTreeMap<String, Vec<String>> {
    let mut out = BTreeMap::new();
    for r in records {
        out.insert(r.label.clone(), r.inputs.clone());
    }
    out
}

/// Splits one `name=key` input entry; entries without a `=` keep the
/// whole string as the name (degrades, never errors).
fn input_entry(e: &str) -> (&str, &str) {
    e.split_once('=').unwrap_or((e, ""))
}

/// Renders *which* per-job inputs changed between two runs' journals:
/// one row per (job, input name) whose content key differs, plus rows
/// for jobs only one run executed. Identical provenance says so with the
/// count of jobs compared.
pub fn render_input_diff(
    a_id: &str,
    a: &BTreeMap<String, Vec<String>>,
    b_id: &str,
    b: &BTreeMap<String, Vec<String>>,
) -> String {
    let mut rows: Vec<(String, String, String)> = Vec::new();
    for (label, ia) in a {
        match b.get(label) {
            None => rows.push((label.clone(), "(job present)".to_string(), "-".to_string())),
            Some(ib) if ia == ib => {}
            Some(ib) => {
                let ka: BTreeMap<&str, &str> = ia.iter().map(|e| input_entry(e)).collect();
                let kb: BTreeMap<&str, &str> = ib.iter().map(|e| input_entry(e)).collect();
                let names: Vec<&&str> =
                    ka.keys().chain(kb.keys().filter(|n| !ka.contains_key(*n))).collect();
                for name in names {
                    let (va, vb) = (ka.get(*name), kb.get(*name));
                    if va != vb {
                        rows.push((
                            format!("{label} · {name}"),
                            va.unwrap_or(&"-").to_string(),
                            vb.unwrap_or(&"-").to_string(),
                        ));
                    }
                }
            }
        }
    }
    for label in b.keys().filter(|l| !a.contains_key(*l)) {
        rows.push((label.clone(), "-".to_string(), "(job present)".to_string()));
    }
    if rows.is_empty() {
        return format!("per-job inputs identical ({} jobs compared)\n", a.len());
    }
    let mut t = Table::new("Changed job inputs", &["job · input", a_id, b_id]);
    for (field, va, vb) in rows {
        t.row(vec![field, va, vb]);
    }
    t.render()
}

/// Loads both runs' journals from under `root` and renders the per-job
/// input diff, or a one-line note when a journal is missing (e.g. a
/// `--no-journal` run). Two runs of the same config share one journal
/// directory, so their inputs compare trivially identical — the signal
/// is in cross-config diffs.
pub fn input_diff_for(root: &std::path::Path, a: &RunManifest, b: &RunManifest) -> String {
    let load = |m: &RunManifest| {
        let replay =
            journal::load(&journal::journal_path(&journal::run_dir(root, &m.config_digest)));
        (!replay.records.is_empty()).then(|| fold_inputs(&replay.records))
    };
    match (load(a), load(b)) {
        (Some(ia), Some(ib)) => render_input_diff(&a.run_id, &ia, &b.run_id, &ib),
        (ia, _) => format!(
            "no journal for run {} — per-job input diff unavailable\n",
            if ia.is_none() { &a.run_id } else { &b.run_id }
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(run_id: &str, outcome: &str) -> RunManifest {
        RunManifest {
            run_id: run_id.to_string(),
            config_digest: "cafe0000cafe0000".to_string(),
            seed: 42,
            scale: 0.03,
            threads: 4,
            fast: true,
            ids: vec!["table2".to_string(), "fig3".to_string()],
            started_unix_ms: 1_000,
            updated_unix_ms: 2_000,
            outcome: outcome.to_string(),
            jobs_run: 9,
            jobs_replayed: 3,
            resume: true,
            wall_s: 12.5,
            artifacts: vec![("table2".to_string(), "aabb".to_string())],
        }
    }

    #[test]
    fn list_folds_into_a_table() {
        let s = render_list(&[manifest("cafe-2", "running"), manifest("cafe-1", "complete")]);
        assert!(s.contains("cafe-2"));
        assert!(s.contains("running (resumed)"));
        assert!(s.contains("complete"));
        assert!(render_list(&[]).contains("no recorded runs"));
    }

    #[test]
    fn resolve_accepts_unique_prefixes_and_names_ambiguity() {
        let ms = vec![manifest("cafe-100", "complete"), manifest("cafe-200", "complete"),
            manifest("beef-300", "failed")];
        assert_eq!(resolve(&ms, "beef-300").unwrap().run_id, "beef-300");
        assert_eq!(resolve(&ms, "beef").unwrap().run_id, "beef-300");
        let e = resolve(&ms, "cafe").unwrap_err();
        assert!(e.contains("cafe-100") && e.contains("cafe-200"), "{e}");
        assert!(resolve(&ms, "nope").unwrap_err().contains("nope"));
    }

    #[test]
    fn show_prints_every_field_and_artifact() {
        let s = render_show(&manifest("cafe-1", "complete"));
        for needle in ["config_digest", "cafe0000cafe0000", "jobs_replayed", "artifact:table2",
            "aabb", "table2 fig3"]
        {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    fn record(label: &str, inputs: &[&str]) -> JobRecord {
        JobRecord {
            seq: 0,
            label: label.to_string(),
            kind: "par".to_string(),
            digest: String::new(),
            seconds: 0.1,
            worker: 0,
            inputs: inputs.iter().map(|s| s.to_string()).collect(),
        }
    }

    #[test]
    fn input_diff_names_the_changed_input_not_just_the_job() {
        let a = fold_inputs(&[
            record("provider:ontology", &["self=aaaa"]),
            record("cell:rf|1", &["cfg=c1", "dep-provider:ontology=aaaa"]),
            record("cell:only-a", &["cfg=c1"]),
        ]);
        let b = fold_inputs(&[
            record("provider:ontology", &["self=bbbb"]),
            record("cell:rf|1", &["cfg=c1", "dep-provider:ontology=bbbb"]),
            record("cell:only-b", &["cfg=c2"]),
        ]);
        let s = render_input_diff("run-a", &a, "run-b", &b);
        // The ontology content key changed — named per input, per job.
        assert!(s.contains("provider:ontology · self"), "{s}");
        assert!(s.contains("aaaa") && s.contains("bbbb"), "{s}");
        assert!(s.contains("cell:rf|1 · dep-provider:ontology"), "{s}");
        // The unchanged cfg entry is not reported.
        assert!(!s.contains("· cfg"), "{s}");
        // Jobs only one run executed are flagged, not silently dropped.
        assert!(s.contains("cell:only-a") && s.contains("cell:only-b"), "{s}");
        assert!(s.contains("(job present)"), "{s}");
    }

    #[test]
    fn identical_inputs_say_so_and_resumes_keep_the_last_record() {
        let twice = [record("cell:x", &["cfg=old"]), record("cell:x", &["cfg=new"])];
        let folded = fold_inputs(&twice);
        assert_eq!(folded["cell:x"], vec!["cfg=new".to_string()]);
        let s = render_input_diff("a", &folded, "b", &folded.clone());
        assert!(s.contains("identical (1 jobs compared)"), "{s}");
    }

    #[test]
    fn input_diff_for_reports_missing_journals_by_run_id() {
        let dir = std::env::temp_dir().join(format!("kcb-runs-diff-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let a = manifest("cafe-1", "complete");
        let b = manifest("cafe-2", "complete");
        let s = input_diff_for(&dir, &a, &b);
        assert!(s.contains("no journal") && s.contains("cafe-1"), "{s}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diff_names_changes_or_declares_identity() {
        let a = manifest("cafe-1", "complete");
        let mut b = manifest("cafe-2", "complete");
        assert!(render_diff(&a, &b).contains("identical"));
        b.seed = 7;
        b.artifacts[0].1 = "ccdd".to_string();
        let s = render_diff(&a, &b);
        assert!(s.contains("seed"), "{s}");
        assert!(s.contains("artifact:table2") && s.contains("ccdd"), "{s}");
        assert!(!s.contains("scale"), "{s}");
    }
}
