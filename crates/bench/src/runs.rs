//! The `repro runs [list|show|diff]` query surface.
//!
//! Renders the run index (`results/runs/index.jsonl`, see
//! [`kcb_core::journal`]) for humans: `list` folds the append-only index
//! to the latest manifest per run (so an interrupted run shows up as
//! still-`running`), `show` prints one manifest in full, and `diff`
//! compares two manifests field by field — including per-artifact
//! checksums, which is how "same config, same bytes?" is answered without
//! re-running anything. Everything here is pure rendering over loaded
//! manifests, so the binary only picks an exit code.

use kcb_core::journal::{diff_manifests, RunManifest};
use kcb_util::fmt::Table;

/// Renders the `runs list` table from folded manifests (newest first).
pub fn render_list(folded: &[RunManifest]) -> String {
    if folded.is_empty() {
        return "no recorded runs (run `repro <artifacts>` first)\n".to_string();
    }
    let mut t = Table::new(
        format!("Recorded runs ({})", folded.len()),
        &["run id", "outcome", "seed", "scale", "threads", "ids", "jobs", "replayed", "wall s"],
    )
    .numeric_after(6);
    for m in folded {
        let mut ids = m.ids.join(" ");
        if ids.len() > 40 {
            ids.truncate(37);
            ids.push_str("...");
        }
        t.row(vec![
            m.run_id.clone(),
            if m.resume { format!("{} (resumed)", m.outcome) } else { m.outcome.clone() },
            m.seed.to_string(),
            m.scale.to_string(),
            m.threads.to_string(),
            ids,
            m.jobs_run.to_string(),
            m.jobs_replayed.to_string(),
            format!("{:.1}", m.wall_s),
        ]);
    }
    t.render()
}

/// Finds one manifest by run id: exact match first, then a unique prefix.
/// Errors name the needle and, on ambiguity, every candidate.
pub fn resolve<'a>(folded: &'a [RunManifest], needle: &str) -> Result<&'a RunManifest, String> {
    if let Some(m) = folded.iter().find(|m| m.run_id == needle) {
        return Ok(m);
    }
    let hits: Vec<&RunManifest> =
        folded.iter().filter(|m| m.run_id.starts_with(needle)).collect();
    match hits.as_slice() {
        [one] => Ok(one),
        [] => Err(format!("no run matches '{needle}' (see `repro runs list`)")),
        many => Err(format!(
            "'{needle}' is ambiguous: {}",
            many.iter().map(|m| m.run_id.as_str()).collect::<Vec<_>>().join(", ")
        )),
    }
}

/// Renders one full manifest as aligned `key  value` lines.
pub fn render_show(m: &RunManifest) -> String {
    let mut t = Table::new(format!("Run {}", m.run_id), &["field", "value"]);
    let rows: Vec<(&str, String)> = vec![
        ("config_digest", m.config_digest.clone()),
        ("outcome", m.outcome.clone()),
        ("seed", m.seed.to_string()),
        ("scale", m.scale.to_string()),
        ("threads", m.threads.to_string()),
        ("fast", m.fast.to_string()),
        ("ids", m.ids.join(" ")),
        ("started_unix_ms", m.started_unix_ms.to_string()),
        ("updated_unix_ms", m.updated_unix_ms.to_string()),
        ("jobs_run", m.jobs_run.to_string()),
        ("jobs_replayed", m.jobs_replayed.to_string()),
        ("resume", m.resume.to_string()),
        ("wall_s", format!("{:.3}", m.wall_s)),
    ];
    for (k, v) in rows {
        t.row(vec![k.to_string(), v]);
    }
    for (id, fnv) in &m.artifacts {
        t.row(vec![format!("artifact:{id}"), fnv.clone()]);
    }
    t.render()
}

/// Renders the field-by-field diff of two manifests; identical manifests
/// (up to timestamps and run id) say so explicitly.
pub fn render_diff(a: &RunManifest, b: &RunManifest) -> String {
    let rows = diff_manifests(a, b);
    if rows.is_empty() {
        return format!("runs {} and {} are identical (config, jobs, artifact checksums)\n",
            a.run_id, b.run_id);
    }
    let mut t = Table::new(
        format!("Diff {} vs {}", a.run_id, b.run_id),
        &["field", a.run_id.as_str(), b.run_id.as_str()],
    );
    for (field, va, vb) in rows {
        t.row(vec![field, va, vb]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(run_id: &str, outcome: &str) -> RunManifest {
        RunManifest {
            run_id: run_id.to_string(),
            config_digest: "cafe0000cafe0000".to_string(),
            seed: 42,
            scale: 0.03,
            threads: 4,
            fast: true,
            ids: vec!["table2".to_string(), "fig3".to_string()],
            started_unix_ms: 1_000,
            updated_unix_ms: 2_000,
            outcome: outcome.to_string(),
            jobs_run: 9,
            jobs_replayed: 3,
            resume: true,
            wall_s: 12.5,
            artifacts: vec![("table2".to_string(), "aabb".to_string())],
        }
    }

    #[test]
    fn list_folds_into_a_table() {
        let s = render_list(&[manifest("cafe-2", "running"), manifest("cafe-1", "complete")]);
        assert!(s.contains("cafe-2"));
        assert!(s.contains("running (resumed)"));
        assert!(s.contains("complete"));
        assert!(render_list(&[]).contains("no recorded runs"));
    }

    #[test]
    fn resolve_accepts_unique_prefixes_and_names_ambiguity() {
        let ms = vec![manifest("cafe-100", "complete"), manifest("cafe-200", "complete"),
            manifest("beef-300", "failed")];
        assert_eq!(resolve(&ms, "beef-300").unwrap().run_id, "beef-300");
        assert_eq!(resolve(&ms, "beef").unwrap().run_id, "beef-300");
        let e = resolve(&ms, "cafe").unwrap_err();
        assert!(e.contains("cafe-100") && e.contains("cafe-200"), "{e}");
        assert!(resolve(&ms, "nope").unwrap_err().contains("nope"));
    }

    #[test]
    fn show_prints_every_field_and_artifact() {
        let s = render_show(&manifest("cafe-1", "complete"));
        for needle in ["config_digest", "cafe0000cafe0000", "jobs_replayed", "artifact:table2",
            "aabb", "table2 fig3"]
        {
            assert!(s.contains(needle), "missing {needle} in:\n{s}");
        }
    }

    #[test]
    fn diff_names_changes_or_declares_identity() {
        let a = manifest("cafe-1", "complete");
        let mut b = manifest("cafe-2", "complete");
        assert!(render_diff(&a, &b).contains("identical"));
        b.seed = 7;
        b.artifacts[0].1 = "ccdd".to_string();
        let s = render_diff(&a, &b);
        assert!(s.contains("seed"), "{s}");
        assert!(s.contains("artifact:table2") && s.contains("ccdd"), "{s}");
        assert!(!s.contains("scale"), "{s}");
    }
}
