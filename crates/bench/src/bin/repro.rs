//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                       # every artifact at the default scale
//! repro table3a fig3              # specific artifacts
//! repro --list                    # show artifact ids
//! repro all --scale 0.05 --seed 7 --out results/
//! repro all --fast                # tiny smoke-test configuration
//! ```
//!
//! Numbers are not expected to match the paper's absolute values (the
//! substrate is a mini-scale simulator — see DESIGN.md); the comparisons
//! that must hold are recorded in EXPERIMENTS.md.

use kcb_core::experiment::{self, ALL_IDS};
use kcb_core::lab::{Lab, LabConfig};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    ids: Vec<String>,
    scale: Option<f64>,
    seed: Option<u64>,
    threads: Option<usize>,
    out: Option<std::path::PathBuf>,
    md: Option<std::path::PathBuf>,
    fast: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: None,
        seed: None,
        threads: None,
        out: None,
        md: None,
        fast: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--fast" => args.fast = true,
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Some(v.parse().map_err(|_| format!("bad scale {v}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v}"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(v.into());
            }
            "--md" => {
                let v = it.next().ok_or("--md needs a file path")?;
                args.md = Some(v.into());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.ids.push(other.to_string()),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
repro — regenerate the paper's tables and figures

USAGE: repro [ARTIFACT...] [OPTIONS]

ARTIFACTS:
  all            every artifact in paper order
  table2 table3a table3b table4 table5 table6
  tableA1..tableA7 fig2 fig3 figA1 figA2
  ablations      ablation-corpus ablation-dim ablation-forest ablation-adapt
  summary        machine-checked scorecard of the paper's key findings
  ext-llama2     extension: the paper's future work (open-weight oracle)

OPTIONS:
  --scale S      ontology scale relative to real ChEBI (default 0.03)
  --seed N       master seed (default 42)
  --threads N    worker threads for forest training (default: CPU count)
  --out DIR      also write one JSON file per artifact into DIR
  --md FILE      also write a combined Markdown report
  --fast         tiny smoke-test configuration (seconds, not minutes)
  --list         list artifact ids and exit";

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in ALL_IDS
            .iter()
            .chain(kcb_core::experiment::ABLATION_IDS)
            .chain(kcb_core::experiment::EXTENSION_IDS)
            .chain(std::iter::once(&kcb_core::experiment::SUMMARY_ID))
        {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let mut ids: Vec<String> = args.ids;
    if ids.is_empty() {
        eprintln!("no artifacts requested\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Some(pos) = ids.iter().position(|i| i == "all") {
        ids.splice(pos..=pos, ALL_IDS.iter().map(|s| s.to_string()));
        ids.dedup();
    }
    if let Some(pos) = ids.iter().position(|i| i == "ablations") {
        ids.remove(pos);
        ids.extend(kcb_core::experiment::ABLATION_IDS.iter().map(|s| s.to_string()));
    }

    let mut cfg = if args.fast { LabConfig::tiny() } else { LabConfig::default() };
    if let Some(s) = args.scale {
        if !(s > 0.0 && s <= 4.0) {
            eprintln!("error: --scale must be in (0, 4], got {s}");
            return ExitCode::FAILURE;
        }
        cfg.scale = s;
    }
    if let Some(s) = args.seed {
        cfg.reseed(s);
    }
    if let Some(t) = args.threads {
        cfg.rf.n_threads = t.max(1);
    }
    eprintln!(
        "# kcb repro — scale {} seed {}{}",
        cfg.scale,
        cfg.seed,
        if args.fast { " (fast mode)" } else { "" }
    );

    let lab = Lab::new(cfg);
    let total = Instant::now();
    let mut failed = false;
    let mut markdown = String::from("# kcb reproduction report\n\n");
    for id in &ids {
        let t0 = Instant::now();
        match experiment::run(&lab, id) {
            Some(artifact) => {
                println!("{}", artifact.render());
                markdown.push_str(&artifact.render_markdown());
                eprintln!("# {id} done in {:.1}s", t0.elapsed().as_secs_f64());
                if let Some(dir) = &args.out {
                    match artifact.write_json(dir) {
                        Ok(path) => eprintln!("# wrote {}", path.display()),
                        Err(e) => {
                            eprintln!("error writing {id}: {e}");
                            failed = true;
                        }
                    }
                }
            }
            None => {
                eprintln!("error: unknown artifact '{id}' (see --list)");
                failed = true;
            }
        }
    }
    if let Some(path) = &args.md {
        match std::fs::write(path, &markdown) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("error writing markdown report: {e}");
                failed = true;
            }
        }
    }
    eprintln!("# total {:.1}s", total.elapsed().as_secs_f64());
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
