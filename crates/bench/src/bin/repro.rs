//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                       # every artifact at the default scale
//! repro table3a fig3              # specific artifacts
//! repro --list                    # show artifact ids with descriptions
//! repro all --scale 0.05 --seed 7 --out results/
//! repro all --fast                # tiny smoke-test configuration
//! repro all --fast --trace t.json --metrics --profile   # observability
//! ```
//!
//! Numbers are not expected to match the paper's absolute values (the
//! substrate is a mini-scale simulator — see DESIGN.md); the comparisons
//! that must hold are recorded in EXPERIMENTS.md.
//!
//! Telemetry: `--trace` writes a Chrome trace-event timeline (open in
//! `chrome://tracing` or Perfetto), `--metrics` writes the versioned
//! `results/run_meta.json` run manifest, `--profile` prints a per-span
//! wall-time table. All three draw on one recording pass that is strictly
//! out-of-band of the artifact pipeline — artifact bytes are identical
//! with or without them (enforced by the determinism suite).

use kcb_bench::cli;
use kcb_bench::run_meta::{self, RunMetaInputs};
use kcb_bench::runs;
use kcb_core::experiment::plan::{run_scheduled, run_scheduled_with, JournalSpec};
use kcb_core::journal;
use kcb_core::lab::{Lab, LabConfig};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
repro — regenerate the paper's tables and figures

USAGE: repro [ARTIFACT...] [OPTIONS]

ARTIFACTS:
  all            every artifact in paper order
  table2 table3a table3b table4 table5 table6
  tableA1..tableA7 fig2 fig3 figA1 figA2
  ablations      ablation-corpus ablation-dim ablation-forest ablation-adapt
  summary        machine-checked scorecard of the paper's key findings
  ext-llama2     extension: the paper's future work (open-weight oracle)

SUBCOMMANDS:
  bench-query    run the raw-speed query-path microbenchmark and write
                 results/bench_query.json (qps/core, p50/p95/p99 per
                 query kind); combines with --fast / --quant / --no-mmap
  serve          freeze a warm snapshot and answer NDJSON queries over
                 TCP (--port, default 7878) and/or a Unix socket
                 (--socket PATH); any artifact ids given are assembled
                 first and preloaded for the `artifact` op; admin verbs
                 `stats`, `health` and `flight` answer inline, and the
                 same TCP port answers HTTP GET /metrics (Prometheus
                 text exposition) and GET /health; slow / recent requests
                 are kept in a flight-recorder ring flushed to
                 results/serve_flight.jsonl on shutdown and on overload;
                 stop with {\"op\":\"shutdown\"} or SIGINT/SIGTERM (both
                 drain the queue and flush the flight recorder first)
  serve-bench    run the serving load harness (N client connections
                 against the batching engine, then a serial replay of the
                 same workload) and write results/bench_serve.json
                 (qps, qps/core, p50/p95/p99, batch-size histogram, shed
                 count, a queue-depth/shed time series sampled during the
                 run, byte-identity checksums)
  serve-top      attach to a running `serve` daemon (--port) and render a
                 refreshing terminal table of live qps, latency
                 percentiles, queue depth, sheds and the per-verb mix;
                 --interval-ms sets the poll cadence, --samples bounds
                 the frame count (0 = until the daemon exits)
  sweep          compile a variant grid (seed x scale x scenario x
                 paradigm x oracle) into one structure-shared DAG and run
                 it: provider and cell jobs shared between variants are
                 trained once, so a K-variant sweep costs well under K
                 single runs; writes per-variant tables plus seed-repeat
                 aggregates (Fleiss kappa, Welch t-tests) under
                 results/analysis/ and the efficiency numbers (shared vs
                 unique jobs, measured speedup with --baseline) to
                 results/bench_sweep.json; journaled under the grid
                 digest, so an interrupted sweep resumes mid-DAG
                   --grid SPEC    the grid, `key=v1,v2;key=...` over keys
                                  seeds / scales / scenarios / paradigms
                                  (sup|ft|icl|all) / oracles / model /
                                  adapt, e.g.
                                  \"seeds=7,8;scenarios=0,1;paradigms=all\"
                   --plan         dry run: print the dedup plan (every
                                  job with its cross-variant refcount)
                                  and exit without scheduling anything
                   --baseline     also run every variant sequentially in
                                  a fresh lab to measure the speedup and
                                  assert row byte-identity
  runs           query the run index (results/runs/index.jsonl):
                   runs [list]        latest manifest per run, newest first
                                      (columns include the journal's jobs
                                      appended + replayed counts, and
                                      resumed runs are marked)
                   runs show ID       one manifest in full (unique prefixes
                                      ok) — jobs_run / jobs_replayed /
                                      resume rows are the journal stats
                   runs diff ID ID    field-by-field manifest comparison,
                                      including per-artifact checksums

OPTIONS:
  --scale S      ontology scale relative to real ChEBI (default 0.03)
  --seed N       master seed (default 42)
  --threads N    worker threads for the cell scheduler; nested forest /
                 LM kernels share the same pool and yield to cell-level
                 parallelism (default: CPU count, capped at 16);
                 artifacts are byte-identical at any thread count
  --out DIR      also write one JSON file per artifact into DIR
  --md FILE      also write a combined Markdown report
  --cache-dir DIR  persistent checkpoint store for trained providers and
                 derived results (default results/ckpt); a warm cache only
                 changes wall time, never artifact bytes
  --cold         ignore existing checkpoints: retrain and overwrite them
  --no-mmap      decode checkpoint containers through the byte reader
                 instead of borrowing them zero-copy from an mmap; bytes
                 are identical either way, only warm-start time changes
  --cache-cap BYTES  after the run, evict oldest checkpoints until the
                 store fits under BYTES
  --quant        bench-query only: add the int8-quantized query legs
  --port N       serve / serve-top: TCP port (default 7878)
  --socket PATH  serve: also listen on a Unix socket (unix only)
  --clients N    serve-bench: concurrent client connections
  --requests N   serve-bench: requests per client
  --queue-cap N  serve / serve-bench: bounded request-queue capacity;
                 submissions beyond it get a typed `overloaded` reply
  --batch-max N  serve / serve-bench: largest micro-batch one worker
                 drains at once (default 32)
  --slow-us N    serve: flight-recorder slow-request threshold, µs
                 (default 10000)
  --interval-ms N  serve-top: polling interval (default 1000)
  --samples N    serve-top: frames to render; 0 = until daemon exit
  --runs-dir DIR run-journal root (default results/runs); artifact runs
                 journal every completed job there and resume mid-DAG
                 after an interruption, byte-identically
  --no-journal   disable the run journal for this artifact run
  --trace FILE   write a Chrome trace-event timeline of the run
  --metrics      write results/run_meta.json (manifest + counters + series)
  --profile      print per-span wall-time statistics to stdout
  --fast         tiny smoke-test configuration (seconds, not minutes)
  --list         list artifact ids with descriptions and exit

FAULT INJECTION:
  KCB_FAULT=abort_after_job:N   abort the process after the Nth journaled
                 job of this run — the crash used by the CI resume test;
                 rerunning the same command resumes from the journal

LIVE TELEMETRY:
  KCB_LIVE=off   serve / serve-bench: disable per-request timing (latency
                 histograms + flight recorder) to measure the telemetry
                 plane's own overhead; counters, gauges and admission
                 control stay on";

/// Re-execs the binary once with glibc's allocator tuned for the autograd
/// workload. Each training step builds and tears down a multi-megabyte
/// tape; with the default tunables glibc trims the freed pages back to the
/// kernel after every step and immediately faults them in again (~20% of
/// wall time in system calls). Raising the trim/mmap thresholds keeps the
/// pages in the arena. The env vars must be set before the first malloc,
/// hence the exec rather than a runtime call.
#[cfg(unix)]
fn tune_allocator_via_reexec() {
    const MARKER: &str = "KCB_MALLOC_TUNED";
    if std::env::var_os(MARKER).is_some() {
        return;
    }
    let Ok(exe) = std::env::current_exe() else { return };
    use std::os::unix::process::CommandExt;
    // exec only returns on failure; in that case run untuned.
    let _ = std::process::Command::new(exe)
        .args(std::env::args_os().skip(1))
        .env(MARKER, "1")
        .env("MALLOC_TRIM_THRESHOLD_", "1073741824")
        .env("MALLOC_MMAP_THRESHOLD_", "268435456")
        .exec();
}

#[cfg(not(unix))]
fn tune_allocator_via_reexec() {}

/// Applies `--cache-cap` to the checkpoint store after checkpoints have
/// been saved, reporting what was evicted in one line.
fn run_gc(lab: &Lab, cap: Option<u64>) {
    if let (Some(cap), Some(store)) = (cap, lab.checkpoint_store()) {
        eprintln!("# {}", store.gc(cap));
    }
}

/// Current unix time in milliseconds (run ids and manifest timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Answers a `repro runs` query against the index under `root`.
fn runs_query(cmd: &cli::RunsCmd, root: &std::path::Path) -> ExitCode {
    let folded = journal::index_fold(journal::index_load(root));
    let rendered = match cmd {
        cli::RunsCmd::List => Ok(runs::render_list(&folded)),
        cli::RunsCmd::Show(id) => runs::resolve(&folded, id).map(runs::render_show),
        cli::RunsCmd::Diff(a, b) => runs::resolve(&folded, a).and_then(|ma| {
            runs::resolve(&folded, b).map(|mb| {
                // Manifest fields first, then the journal-level answer to
                // "which inputs changed" (per job, per input entry).
                let mut out = runs::render_diff(ma, mb);
                out.push_str(&runs::input_diff_for(root, ma, mb));
                out
            })
        }),
    };
    match rendered {
        Ok(text) => {
            print!("{text}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

/// `repro sweep --grid SPEC`: compiles the variant grid into one
/// structure-shared DAG, runs it (resumably, under the journal), writes
/// the `analysis/` tables plus `results/bench_sweep.json`, and — with
/// `--baseline` — re-runs every variant sequentially to measure the
/// speedup and prove the rows byte-identical.
fn sweep_cmd(
    args: &cli::Args,
    base: LabConfig,
    store: std::sync::Arc<kcb_core::ckpt::CkptStore>,
    threads: usize,
    runs_root: &std::path::Path,
    config_digest: String,
) -> ExitCode {
    use kcb_bench::analysis;
    use kcb_core::experiment::sweep;

    // cli::parse validated the spec already; parse again for the value.
    let grid = match sweep::GridSpec::parse(args.grid.as_deref().unwrap_or_default()) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: --grid: {e}");
            return ExitCode::FAILURE;
        }
    };
    let splan = sweep::plan(&base, &grid);
    if args.plan_only {
        // Dry run: show what would be deduplicated, schedule nothing.
        print!("{}", analysis::render_plan(&grid, &splan));
        return ExitCode::SUCCESS;
    }
    let gdigest = format!("sweep-{}", sweep::grid_digest(&base, &grid));
    eprintln!(
        "# sweep {} — {} variants / {} labs, {} jobs ({} shared, {} unique)",
        grid.render(),
        splan.variant_ids.len(),
        splan.labs,
        splan.total_jobs,
        splan.shared_jobs,
        splan.unique_jobs
    );

    let fault = match journal::FaultPlan::from_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    // The sweep journals under its grid digest (not one variant's config
    // digest) so a resumed sweep finds every variant's completions.
    let journal_dir =
        (!args.no_journal).then(|| journal::run_dir(runs_root, &gdigest));
    let started_ms = unix_ms();
    let mut manifest = journal::RunManifest {
        run_id: format!("{gdigest}-{started_ms}"),
        config_digest: gdigest.clone(),
        seed: base.seed,
        scale: base.scale,
        threads: threads as u64,
        fast: args.fast,
        ids: splan.variant_ids.clone(),
        started_unix_ms: started_ms,
        updated_unix_ms: started_ms,
        outcome: "running".to_string(),
        jobs_run: 0,
        jobs_replayed: 0,
        resume: false,
        wall_s: 0.0,
        artifacts: Vec::new(),
    };
    if journal_dir.is_some() {
        journal::index_append(runs_root, &manifest);
    }

    let total = Instant::now();
    let spec = sweep::SweepSpec {
        workers: threads,
        journal: journal_dir.clone().map(|dir| JournalSpec { dir, fault }),
        store: Some(std::sync::Arc::clone(&store)),
    };
    let outcome = sweep::run_sweep(&base, &grid, &spec);
    if let Some(cap) = args.cache_cap {
        eprintln!("# {}", store.gc(cap));
    }
    eprintln!(
        "# scheduler: {} workers, {} jobs, {} steals, {:.1}s",
        outcome.report.scheduler.workers,
        outcome.report.scheduler.jobs.len(),
        outcome.report.scheduler.steals,
        outcome.report.scheduler.wall_seconds
    );
    if outcome.report.journal.enabled {
        eprintln!(
            "# journal: {} appended, {} replayed{} ({})",
            outcome.report.journal.appended,
            outcome.report.journal.replayed,
            if outcome.report.journal.resume { " — resumed an interrupted sweep" } else { "" },
            journal_dir.as_ref().map(|d| d.display().to_string()).unwrap_or_default()
        );
    }

    // The sequential baseline reruns every variant in a fresh lab — the
    // cost a user without the sweep compiler would pay — and doubles as a
    // byte-identity check on the shared-DAG rows.
    let seq = args.baseline.then(|| {
        eprintln!("# baseline: running {} variants sequentially…", splan.variant_ids.len());
        let (per_variant, wall_s) = sweep::run_sequential(&base, &grid);
        analysis::SeqBaseline { per_variant, wall_s }
    });
    let mut failed = false;
    if let Some(seq) = &seq {
        if seq.rows_match(&outcome) {
            eprintln!(
                "# baseline: rows byte-identical — sequential {:.1}s vs sweep {:.1}s ({:.2}x)",
                seq.wall_s,
                outcome.wall_s,
                if outcome.wall_s > 0.0 { seq.wall_s / outcome.wall_s } else { 0.0 }
            );
        } else {
            eprintln!("error: sweep rows differ from the sequential reference");
            failed = true;
        }
    }

    print!("{}", analysis::render_variants(&outcome));
    print!("{}", analysis::render_aggregates(&outcome.aggregates));
    print!("{}", analysis::render_significance(&outcome.tests));

    let analysis_dir = args
        .out
        .clone()
        .unwrap_or_else(|| std::path::Path::new("results").join("analysis"));
    match analysis::write_analysis(&analysis_dir, &outcome) {
        Ok(()) => eprintln!("# wrote {}/", analysis_dir.display()),
        Err(e) => {
            eprintln!("error writing {}: {e}", analysis_dir.display());
            failed = true;
        }
    }
    let bench_doc = analysis::bench_sweep_json(&grid, &outcome, seq.as_ref());
    let bench_path = std::path::Path::new("results").join("bench_sweep.json");
    let text = serde_json::to_string_pretty(&bench_doc).expect("serializable");
    if let Err(e) =
        std::fs::create_dir_all("results").and_then(|()| std::fs::write(&bench_path, &text))
    {
        eprintln!("error writing {}: {e}", bench_path.display());
        failed = true;
    } else {
        eprintln!("# wrote {}", bench_path.display());
    }

    let total_secs = total.elapsed().as_secs_f64();
    let telemetry = kcb_obs::drain();
    kcb_obs::set_enabled(false);
    if let Some(path) = &args.trace {
        let doc = kcb_obs::trace::chrome_trace_string(&telemetry);
        match std::fs::write(path, &doc) {
            Ok(()) => eprintln!("# wrote {} ({} spans)", path.display(), telemetry.spans.len()),
            Err(e) => {
                eprintln!("error writing trace {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if args.metrics {
        let meta = run_meta::run_meta_json(&RunMetaInputs {
            seed: base.seed,
            scale: base.scale,
            threads,
            fast: args.fast,
            mode: "sweep",
            total_seconds: total_secs,
            config_digest,
            git_rev: run_meta::git_rev(),
            report: &outcome.report,
            telemetry: &telemetry,
            serve: None,
            sweep: Some(analysis::sweep_meta(&grid, &outcome, seq.as_ref())),
        });
        let meta_path = std::path::Path::new("results").join("run_meta.json");
        let text = serde_json::to_string_pretty(&meta).expect("serializable");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&meta_path, &text))
        {
            eprintln!("error writing {}: {e}", meta_path.display());
            failed = true;
        } else {
            eprintln!("# wrote {}", meta_path.display());
        }
    }
    if args.profile {
        println!("\n## Span profile ({} spans)\n", telemetry.spans.len());
        print!("{}", kcb_obs::profile::render_table(&telemetry));
    }
    if journal_dir.is_some() {
        manifest.outcome = if failed { "failed" } else { "complete" }.to_string();
        manifest.updated_unix_ms = unix_ms();
        manifest.jobs_run = outcome.report.journal.appended;
        manifest.jobs_replayed = outcome.report.journal.replayed;
        manifest.resume = outcome.report.journal.resume;
        manifest.wall_s = total_secs;
        manifest.artifacts = outcome
            .artifacts
            .iter()
            .map(|(id, a)| {
                let body = a.to_replay_json().render_json(None);
                (id.clone(), journal::fnv64_hex(body.as_bytes()))
            })
            .collect();
        journal::index_append(runs_root, &manifest);
    }
    eprintln!("# total {total_secs:.1}s");
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    tune_allocator_via_reexec();
    let args = match cli::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    if args.list {
        let ids = cli::known_ids();
        let width = ids.iter().map(|id| id.len()).max().unwrap_or(0);
        for id in ids {
            let what = kcb_core::experiment::describe(id).unwrap_or("");
            println!("{id:width$}  {what}");
        }
        return ExitCode::SUCCESS;
    }
    let runs_root =
        args.runs_dir.clone().unwrap_or_else(|| std::path::Path::new("results").join("runs"));
    if let Some(cmd) = &args.runs {
        // Pure index queries: no lab, no training, no journal writes.
        return runs_query(cmd, &runs_root);
    }
    if args.serve_top {
        // Pure client: attach to a daemon's stats verb, no lab needed.
        kcb_util::signal::install();
        let addr = format!("127.0.0.1:{}", args.port.unwrap_or(7878));
        let interval = std::time::Duration::from_millis(args.interval_ms.unwrap_or(1000));
        let samples = args.samples.unwrap_or(0);
        eprintln!("# serve-top — polling {addr} every {}ms (Ctrl-C to stop)", interval.as_millis());
        return match kcb_bench::serve_top::run(&addr, interval, samples, &mut std::io::stdout()) {
            Ok(frames) => {
                eprintln!("# {frames} frames");
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("error polling {addr}: {e}");
                ExitCode::FAILURE
            }
        };
    }
    let mut ids: Vec<String> = args.ids.clone();
    if ids.is_empty() && !(args.bench_query || args.serve || args.serve_bench || args.sweep) {
        eprintln!("no artifacts requested\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    cli::expand_aliases(&mut ids);
    // Reject unknown ids before building the DAG (run_scheduled skips
    // silently, mirroring experiment::run returning None).
    if let Err(e) = cli::validate_ids(&ids) {
        eprintln!("error: {e}");
        return ExitCode::FAILURE;
    }

    let mut cfg = if args.fast { LabConfig::tiny() } else { LabConfig::default() };
    if let Some(s) = args.scale {
        cfg.scale = s;
    }
    if let Some(s) = args.seed {
        cfg.reseed(s);
    }
    if let Some(t) = args.threads {
        cfg.rf.n_threads = t;
        // The same pool size drives the LM matmul kernels; results are
        // bitwise identical at any thread count (see kcb_lm::pool).
        kcb_lm::pool::set_threads(t);
    }
    eprintln!(
        "# kcb repro — scale {} seed {}{}",
        cfg.scale,
        cfg.seed,
        if args.fast { " (fast mode)" } else { "" }
    );

    // Turn the recorder on before any instrumented work; the artifact
    // path never reads telemetry, so this cannot change output bytes.
    if args.wants_telemetry() {
        kcb_obs::reset();
        kcb_obs::set_enabled(true);
    }

    let threads = args.threads.unwrap_or_else(kcb_lm::pool::threads);
    let (scale, seed) = (cfg.scale, cfg.seed);
    let config_digest = run_meta::fnv64_hex(format!("{cfg:?}").as_bytes());
    // Trained providers and derived results persist across runs in a
    // content-addressed store; a stale or corrupt entry falls back to
    // retraining, so the cache is purely a wall-clock knob.
    let cache_dir =
        args.cache_dir.clone().unwrap_or_else(|| std::path::Path::new("results").join("ckpt"));
    let mut store = if args.cold {
        kcb_core::ckpt::CkptStore::cold(cache_dir)
    } else {
        kcb_core::ckpt::CkptStore::open(cache_dir)
    };
    // Zero-copy warm start is the default; --no-mmap drops to the decode
    // path (same bytes, more copies).
    store.set_mmap(!args.no_mmap);
    let store = std::sync::Arc::new(store);
    if args.sweep {
        // The sweep compiler builds its own labs (one per seed × scale
        // group) over this shared store; the single-lab path below never
        // runs.
        return sweep_cmd(&args, cfg, store, threads, &runs_root, config_digest);
    }
    let lab = Lab::with_checkpoints(cfg, store);

    if args.serve {
        // Assemble any requested artifacts first so the daemon can serve
        // their JSON payloads by id. (Empty id list → empty DAG, but the
        // report still feeds run_meta below.)
        let serve_t0 = Instant::now();
        let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
        let (preload, report) = run_scheduled(&lab, &id_refs, threads);
        let mut snap =
            kcb_core::snapshot::Snapshot::freeze(&lab, kcb_core::snapshot::SnapshotSpec::default());
        for (id, artifact) in &preload {
            let payload = serde_json::json!({
                "id": artifact.id,
                "title": artifact.title,
                "data": artifact.json,
            });
            snap.add_artifact(id.clone(), payload);
        }
        lab.save_checkpoints();
        run_gc(&lab, args.cache_cap);
        // Flight-recorder dumps land next to the other result files.
        let flight_path = std::path::Path::new("results").join("serve_flight.jsonl");
        let _ = std::fs::create_dir_all("results");
        let cfg = kcb_serve::ServerConfig {
            tcp: Some(format!("127.0.0.1:{}", args.port.unwrap_or(7878))),
            socket: args.socket.clone(),
            engine: kcb_serve::EngineConfig {
                workers: threads,
                queue_cap: args.queue_cap.unwrap_or(4096),
                batch_max: args.batch_max.unwrap_or(32),
                flight: kcb_serve::FlightConfig {
                    path: Some(flight_path.clone()),
                    slow_us: args.slow_us.unwrap_or(10_000),
                    ..Default::default()
                },
            },
        };
        let server = match kcb_serve::Server::start(std::sync::Arc::new(snap), &cfg) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error starting server: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Some(addr) = server.tcp_addr {
            eprintln!("# serving on tcp://{addr} ({} workers)", threads);
            eprintln!("# scrape GET http://{addr}/metrics (Prometheus) or /health");
        }
        if let Some(path) = &args.socket {
            eprintln!("# serving on unix:{}", path.display());
        }
        eprintln!("# admin verbs: stats / health / flight — watch live with `repro serve-top`");
        eprintln!("# flight recorder -> {} (slow >= {}us)", flight_path.display(), args.slow_us.unwrap_or(10_000));
        eprintln!("# stop with: {{\"id\":0,\"op\":\"shutdown\"}} or SIGINT/SIGTERM");
        // Graceful drain: a signal trips the latch; the poll loop turns it
        // into the same stop path a shutdown verb takes (acceptors close,
        // workers drain the queue, the flight recorder flushes).
        kcb_util::signal::install();
        while !server.stopped() && !kcb_util::signal::triggered() {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        if !server.stopped() {
            eprintln!("# signal — draining queue, flushing flight recorder");
            server.stop();
        }
        // Counters keep moving until the drain finishes inside wait(),
        // which consumes the server — clone the handles that must report
        // post-drain values.
        let live_timing = server.metrics().timing();
        let uptime_s = server.metrics().uptime_s();
        let verb_counts = server.metrics().verb_counts();
        let errors_h = std::sync::Arc::clone(&server.metrics().errors);
        let e2e_h = std::sync::Arc::clone(&server.metrics().e2e_us);
        let stats = server.wait();
        let (errors, e2e) = (errors_h.get(), e2e_h.snapshot());
        eprintln!(
            "# served {} requests, shed {}, errors {errors}, p99 {}us",
            stats.served,
            stats.shed,
            e2e.percentile(99.0)
        );
        if args.metrics {
            let telemetry = kcb_obs::drain();
            kcb_obs::set_enabled(false);
            let verbs = serde_json::Value::Object(
                verb_counts
                    .into_iter()
                    .map(|(k, v)| (k.to_string(), serde_json::json!(v)))
                    .collect(),
            );
            let e2e_json = serde_json::json!({
                "count": e2e.count(),
                "sum_us": e2e.sum,
                "max_us": e2e.max,
                "p50_us": e2e.percentile(50.0),
                "p95_us": e2e.percentile(95.0),
                "p99_us": e2e.percentile(99.0),
            });
            let summary = serde_json::json!({
                "served": stats.served,
                "shed": stats.shed,
                "errors": errors,
                "uptime_s": uptime_s,
                "live_timing": live_timing,
                "verbs": verbs,
                "e2e": e2e_json,
            });
            let meta = run_meta::run_meta_json(&RunMetaInputs {
                seed,
                scale,
                threads,
                fast: args.fast,
                mode: "serve",
                total_seconds: serve_t0.elapsed().as_secs_f64(),
                config_digest,
                git_rev: run_meta::git_rev(),
                report: &report,
                telemetry: &telemetry,
                serve: Some(summary),
                sweep: None,
            });
            let meta_path = std::path::Path::new("results").join("run_meta.json");
            let text = serde_json::to_string_pretty(&meta).expect("serializable");
            if let Err(e) = std::fs::write(&meta_path, &text) {
                eprintln!("error writing {}: {e}", meta_path.display());
                return ExitCode::FAILURE;
            }
            eprintln!("# wrote {}", meta_path.display());
        }
        return ExitCode::SUCCESS;
    }
    if args.serve_bench {
        let snap =
            kcb_core::snapshot::Snapshot::freeze(&lab, kcb_core::snapshot::SnapshotSpec::default());
        lab.save_checkpoints();
        run_gc(&lab, args.cache_cap);
        let mut bcfg = kcb_serve::bench::BenchConfig::sized(threads, seed, args.fast);
        if let Some(c) = args.clients {
            bcfg.clients = c;
        }
        if let Some(r) = args.requests {
            bcfg.requests = r;
        }
        if let Some(q) = args.queue_cap {
            bcfg.queue_cap = q;
        }
        if let Some(b) = args.batch_max {
            bcfg.batch_max = b;
        }
        let doc = kcb_serve::bench::run(std::sync::Arc::new(snap), &bcfg);
        let path = std::path::Path::new("results").join("bench_serve.json");
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        if let Err(e) =
            std::fs::create_dir_all("results").and_then(|()| std::fs::write(&path, &text))
        {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        let served = &doc["served"];
        eprintln!(
            "# served: {} reqs in {:.2}s — {:.0} qps ({:.0} qps/core), p50 {:.0}us p99 {:.0}us, shed {}",
            served["requests"],
            served["wall_s"].as_f64().unwrap_or(0.0),
            served["qps"].as_f64().unwrap_or(0.0),
            served["qps_per_core"].as_f64().unwrap_or(0.0),
            served["p50_us"].as_f64().unwrap_or(0.0),
            served["p99_us"].as_f64().unwrap_or(0.0),
            served["shed"],
        );
        eprintln!(
            "# serial: {:.0} qps — speedup {:.1}x, byte_identical {}",
            doc["serial"]["qps"].as_f64().unwrap_or(0.0),
            doc["speedup_vs_serial"].as_f64().unwrap_or(0.0),
            doc["byte_identical"],
        );
        eprintln!("# wrote {}", path.display());
        // A checksum mismatch between the batched and serial paths is a
        // determinism breach, not a performance number.
        if doc["byte_identical"] != serde_json::json!(true) {
            eprintln!("error: served replies differ from the serial reference");
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    if args.bench_query {
        let doc = kcb_bench::bench_query::run(&lab, args.quant, threads, args.fast);
        if args.quant {
            // Prove metric parity of the int8 legs rather than assume it.
            let calib = kcb_core::experiment::quant::calibrate(&lab);
            let path = std::path::Path::new("results").join("quant_calibration.json");
            let text = serde_json::to_string_pretty(&calib).expect("serializable");
            if let Err(e) = std::fs::create_dir_all("results")
                .and_then(|()| std::fs::write(&path, &text))
            {
                eprintln!("error writing {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            eprintln!(
                "# calibration: {} (wrote {})",
                if calib["pass"] == serde_json::json!(true) { "pass" } else { "FAIL" },
                path.display()
            );
        }
        lab.save_checkpoints();
        run_gc(&lab, args.cache_cap);
        let path = std::path::Path::new("results").join("bench_query.json");
        let text = serde_json::to_string_pretty(&doc).expect("serializable");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&path, &text))
        {
            eprintln!("error writing {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        if let Some(kinds) = doc["kinds"].as_object() {
            for (kind, row) in kinds {
                eprintln!(
                    "# {kind}: {} queries, {:.0} qps/core, p50 {:.1}us p99 {:.1}us",
                    row["count"],
                    row["qps_per_core"].as_f64().unwrap_or(0.0),
                    row["p50_s"].as_f64().unwrap_or(0.0) * 1e6,
                    row["p99_s"].as_f64().unwrap_or(0.0) * 1e6,
                );
            }
        }
        eprintln!("# wrote {}", path.display());
        return ExitCode::SUCCESS;
    }
    let total = Instant::now();
    let mut markdown = String::from("# kcb reproduction report\n\n");
    let mut failed = false;

    // Run journal: every completed job is appended (fsynced) under
    // results/runs/<config-digest>/, so a killed run resumes mid-DAG on
    // the next invocation with byte-identical artifacts. KCB_FAULT
    // injects the crash the CI resume test proves this with.
    let fault = match journal::FaultPlan::from_env() {
        Ok(f) => f,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let spec = (!args.no_journal).then(|| JournalSpec {
        dir: journal::run_dir(&runs_root, &lab.config_digest()),
        fault,
    });
    let started_ms = unix_ms();
    let run_id = format!("{}-{started_ms}", lab.config_digest());
    let mut manifest = journal::RunManifest {
        run_id,
        config_digest: lab.config_digest(),
        seed,
        scale,
        threads: threads as u64,
        fast: args.fast,
        ids: ids.clone(),
        started_unix_ms: started_ms,
        updated_unix_ms: started_ms,
        outcome: "running".to_string(),
        jobs_run: 0,
        jobs_replayed: 0,
        resume: false,
        wall_s: 0.0,
        artifacts: Vec::new(),
    };
    if spec.is_some() {
        journal::index_append(&runs_root, &manifest);
    }

    // Decompose the requested artifacts into the dependency-aware cell
    // DAG and run it; artifacts come back in request (= canonical) order
    // and are byte-identical at any worker count.
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let (artifacts, report) = run_scheduled_with(&lab, &id_refs, threads, spec.as_ref());
    // Persist the union of loaded + freshly computed derived results so
    // the next run replays them.
    lab.save_checkpoints();
    run_gc(&lab, args.cache_cap);
    eprintln!(
        "# scheduler: {} workers, {} jobs, {} steals, {:.1}s",
        report.scheduler.workers,
        report.scheduler.jobs.len(),
        report.scheduler.steals,
        report.scheduler.wall_seconds
    );
    if report.journal.enabled {
        eprintln!(
            "# journal: {} appended, {} replayed{} ({})",
            report.journal.appended,
            report.journal.replayed,
            if report.journal.resume { " — resumed an interrupted run" } else { "" },
            spec.as_ref().map(|s| s.dir.display().to_string()).unwrap_or_default()
        );
    }
    eprintln!(
        "# checkpoints: {} hits, {} misses ({})",
        report.cache.ckpt_hits,
        report.cache.ckpt_misses,
        lab.checkpoint_store().map(|s| s.dir().display().to_string()).unwrap_or_default()
    );
    for j in &report.scheduler.jobs {
        if let Some(id) = j.label.strip_prefix("artifact:") {
            eprintln!("# {id} assembled in {:.1}s", j.seconds);
        }
    }
    for (id, artifact) in &artifacts {
        println!("{}", artifact.render());
        markdown.push_str(&artifact.render_markdown());
        if let Some(dir) = &args.out {
            match artifact.write_json(dir) {
                Ok(path) => eprintln!("# wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error writing {id}: {e}");
                    failed = true;
                }
            }
        }
    }
    if let Some(path) = &args.md {
        match std::fs::write(path, &markdown) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("error writing markdown report: {e}");
                failed = true;
            }
        }
    }
    let total_secs = total.elapsed().as_secs_f64();

    // One drain serves all three exporters; after this the recorder is
    // empty again.
    let telemetry = kcb_obs::drain();
    kcb_obs::set_enabled(false);

    if let Some(path) = &args.trace {
        let doc = kcb_obs::trace::chrome_trace_string(&telemetry);
        match std::fs::write(path, &doc) {
            Ok(()) => eprintln!("# wrote {} ({} spans)", path.display(), telemetry.spans.len()),
            Err(e) => {
                eprintln!("error writing trace {}: {e}", path.display());
                failed = true;
            }
        }
    }
    if args.metrics {
        let meta = run_meta::run_meta_json(&RunMetaInputs {
            seed,
            scale,
            threads,
            fast: args.fast,
            mode: "artifacts",
            total_seconds: total_secs,
            config_digest,
            git_rev: run_meta::git_rev(),
            report: &report,
            telemetry: &telemetry,
            serve: None,
            sweep: None,
        });
        let meta_path = std::path::Path::new("results").join("run_meta.json");
        let text = serde_json::to_string_pretty(&meta).expect("serializable");
        if let Err(e) = std::fs::create_dir_all("results")
            .and_then(|()| std::fs::write(&meta_path, &text))
        {
            eprintln!("error writing {}: {e}", meta_path.display());
            failed = true;
        } else {
            eprintln!("# wrote {}", meta_path.display());
        }
        if ids.iter().any(|id| id == "summary") {
            println!("\n## Run metadata ({})\n{text}", meta_path.display());
        }
    }
    if args.profile {
        println!("\n## Span profile ({} spans)\n", telemetry.spans.len());
        print!("{}", kcb_obs::profile::render_table(&telemetry));
        if !report.checkpoints.is_empty() {
            println!(
                "\n## Checkpoints ({} hits, {} misses)\n",
                report.cache.ckpt_hits, report.cache.ckpt_misses
            );
            println!("{:<20} {:<18} {:>6} {:>12}", "provider", "key", "state", "bytes");
            for e in &report.checkpoints {
                println!(
                    "{:<20} {:<18} {:>6} {:>12}",
                    e.provider,
                    e.key,
                    if e.hit { "hit" } else { "miss" },
                    e.bytes
                );
            }
        }
    }
    // Terminal index record: folds over the start record, so `repro runs
    // list` shows this run as complete/failed — or still `running` if we
    // crashed before reaching here.
    if spec.is_some() {
        manifest.outcome = if failed { "failed" } else { "complete" }.to_string();
        manifest.updated_unix_ms = unix_ms();
        manifest.jobs_run = report.journal.appended;
        manifest.jobs_replayed = report.journal.replayed;
        manifest.resume = report.journal.resume;
        manifest.wall_s = total_secs;
        manifest.artifacts = artifacts
            .iter()
            .map(|(id, a)| {
                let body = a.to_replay_json().render_json(None);
                (id.clone(), journal::fnv64_hex(body.as_bytes()))
            })
            .collect();
        journal::index_append(&runs_root, &manifest);
    }
    eprintln!("# total {:.1}s", total_secs);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
