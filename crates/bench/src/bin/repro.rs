//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                       # every artifact at the default scale
//! repro table3a fig3              # specific artifacts
//! repro --list                    # show artifact ids
//! repro all --scale 0.05 --seed 7 --out results/
//! repro all --fast                # tiny smoke-test configuration
//! ```
//!
//! Numbers are not expected to match the paper's absolute values (the
//! substrate is a mini-scale simulator — see DESIGN.md); the comparisons
//! that must hold are recorded in EXPERIMENTS.md.

use kcb_core::experiment::plan::run_scheduled;
use kcb_core::experiment::ALL_IDS;
use kcb_core::lab::{Lab, LabConfig};
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    ids: Vec<String>,
    scale: Option<f64>,
    seed: Option<u64>,
    threads: Option<usize>,
    out: Option<std::path::PathBuf>,
    md: Option<std::path::PathBuf>,
    fast: bool,
    list: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ids: Vec::new(),
        scale: None,
        seed: None,
        threads: None,
        out: None,
        md: None,
        fast: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--fast" => args.fast = true,
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                args.scale = Some(v.parse().map_err(|_| format!("bad scale {v}"))?);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v}"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                args.threads = Some(v.parse().map_err(|_| format!("bad thread count {v}"))?);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                args.out = Some(v.into());
            }
            "--md" => {
                let v = it.next().ok_or("--md needs a file path")?;
                args.md = Some(v.into());
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => args.ids.push(other.to_string()),
        }
    }
    Ok(args)
}

const USAGE: &str = "\
repro — regenerate the paper's tables and figures

USAGE: repro [ARTIFACT...] [OPTIONS]

ARTIFACTS:
  all            every artifact in paper order
  table2 table3a table3b table4 table5 table6
  tableA1..tableA7 fig2 fig3 figA1 figA2
  ablations      ablation-corpus ablation-dim ablation-forest ablation-adapt
  summary        machine-checked scorecard of the paper's key findings
  ext-llama2     extension: the paper's future work (open-weight oracle)

OPTIONS:
  --scale S      ontology scale relative to real ChEBI (default 0.03)
  --seed N       master seed (default 42)
  --threads N    worker threads for the cell scheduler; nested forest /
                 LM kernels share the same pool and yield to cell-level
                 parallelism (default: CPU count, capped at 16);
                 artifacts are byte-identical at any thread count
  --out DIR      also write one JSON file per artifact into DIR
  --md FILE      also write a combined Markdown report
  --fast         tiny smoke-test configuration (seconds, not minutes)
  --list         list artifact ids and exit";

/// Re-execs the binary once with glibc's allocator tuned for the autograd
/// workload. Each training step builds and tears down a multi-megabyte
/// tape; with the default tunables glibc trims the freed pages back to the
/// kernel after every step and immediately faults them in again (~20% of
/// wall time in system calls). Raising the trim/mmap thresholds keeps the
/// pages in the arena. The env vars must be set before the first malloc,
/// hence the exec rather than a runtime call.
#[cfg(unix)]
fn tune_allocator_via_reexec() {
    const MARKER: &str = "KCB_MALLOC_TUNED";
    if std::env::var_os(MARKER).is_some() {
        return;
    }
    let Ok(exe) = std::env::current_exe() else { return };
    use std::os::unix::process::CommandExt;
    // exec only returns on failure; in that case run untuned.
    let _ = std::process::Command::new(exe)
        .args(std::env::args_os().skip(1))
        .env(MARKER, "1")
        .env("MALLOC_TRIM_THRESHOLD_", "1073741824")
        .env("MALLOC_MMAP_THRESHOLD_", "268435456")
        .exec();
}

#[cfg(not(unix))]
fn tune_allocator_via_reexec() {}

fn main() -> ExitCode {
    tune_allocator_via_reexec();
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    if args.list {
        for id in ALL_IDS
            .iter()
            .chain(kcb_core::experiment::ABLATION_IDS)
            .chain(kcb_core::experiment::EXTENSION_IDS)
            .chain(std::iter::once(&kcb_core::experiment::SUMMARY_ID))
        {
            println!("{id}");
        }
        return ExitCode::SUCCESS;
    }
    let mut ids: Vec<String> = args.ids;
    if ids.is_empty() {
        eprintln!("no artifacts requested\n\n{USAGE}");
        return ExitCode::FAILURE;
    }
    if let Some(pos) = ids.iter().position(|i| i == "all") {
        ids.splice(pos..=pos, ALL_IDS.iter().map(|s| s.to_string()));
        ids.dedup();
    }
    if let Some(pos) = ids.iter().position(|i| i == "ablations") {
        ids.remove(pos);
        ids.extend(kcb_core::experiment::ABLATION_IDS.iter().map(|s| s.to_string()));
    }

    let mut cfg = if args.fast { LabConfig::tiny() } else { LabConfig::default() };
    if let Some(s) = args.scale {
        if !(s > 0.0 && s <= 4.0) {
            eprintln!("error: --scale must be in (0, 4], got {s}");
            return ExitCode::FAILURE;
        }
        cfg.scale = s;
    }
    if let Some(s) = args.seed {
        cfg.reseed(s);
    }
    if let Some(t) = args.threads {
        cfg.rf.n_threads = t.max(1);
        // The same pool size drives the LM matmul kernels; results are
        // bitwise identical at any thread count (see kcb_lm::pool).
        kcb_lm::pool::set_threads(t.max(1));
    }
    eprintln!(
        "# kcb repro — scale {} seed {}{}",
        cfg.scale,
        cfg.seed,
        if args.fast { " (fast mode)" } else { "" }
    );

    // Reject unknown ids before building the DAG (run_scheduled skips
    // silently, mirroring experiment::run returning None).
    let known: Vec<String> = ALL_IDS
        .iter()
        .chain(kcb_core::experiment::ABLATION_IDS)
        .chain(kcb_core::experiment::EXTENSION_IDS)
        .chain(std::iter::once(&kcb_core::experiment::SUMMARY_ID))
        .map(|s| s.to_ascii_lowercase())
        .collect();
    let mut failed = false;
    for id in &ids {
        if !known.contains(&id.to_ascii_lowercase()) {
            eprintln!("error: unknown artifact '{id}' (see --list)");
            failed = true;
        }
    }
    if failed {
        return ExitCode::FAILURE;
    }

    let threads = args.threads.unwrap_or_else(kcb_lm::pool::threads);
    let (scale, seed) = (cfg.scale, cfg.seed);
    let lab = Lab::new(cfg);
    let total = Instant::now();
    let mut markdown = String::from("# kcb reproduction report\n\n");

    // Decompose the requested artifacts into the dependency-aware cell
    // DAG and run it; artifacts come back in request (= canonical) order
    // and are byte-identical at any worker count.
    let id_refs: Vec<&str> = ids.iter().map(String::as_str).collect();
    let (artifacts, report) = run_scheduled(&lab, &id_refs, threads);
    eprintln!(
        "# scheduler: {} workers, {} jobs, {} steals, {:.1}s",
        report.scheduler.workers,
        report.scheduler.jobs.len(),
        report.scheduler.steals,
        report.scheduler.wall_seconds
    );
    for j in &report.scheduler.jobs {
        if let Some(id) = j.label.strip_prefix("artifact:") {
            eprintln!("# {id} assembled in {:.1}s", j.seconds);
        }
    }
    for (id, artifact) in &artifacts {
        println!("{}", artifact.render());
        markdown.push_str(&artifact.render_markdown());
        if let Some(dir) = &args.out {
            match artifact.write_json(dir) {
                Ok(path) => eprintln!("# wrote {}", path.display()),
                Err(e) => {
                    eprintln!("error writing {id}: {e}");
                    failed = true;
                }
            }
        }
    }
    if let Some(path) = &args.md {
        match std::fs::write(path, &markdown) {
            Ok(()) => eprintln!("# wrote {}", path.display()),
            Err(e) => {
                eprintln!("error writing markdown report: {e}");
                failed = true;
            }
        }
    }
    let total_secs = total.elapsed().as_secs_f64();

    // Machine-readable perf trajectory: run configuration, per-artifact
    // assembly times, per-cell and per-provider timings, and scheduler /
    // cache statistics, tracked across PRs (see EXPERIMENTS.md).
    let jobs = &report.scheduler.jobs;
    let group = |prefix: &str| -> Vec<serde_json::Value> {
        jobs.iter()
            .filter(|j| j.label.starts_with(prefix))
            .map(|j| {
                serde_json::json!({
                    "label": j.label.strip_prefix(prefix).unwrap_or(&j.label),
                    "kind": j.kind,
                    "seconds": j.seconds,
                })
            })
            .collect()
    };
    let bench_path = std::path::Path::new("results").join("bench_repro.json");
    let scheduler_stats = serde_json::json!({
        "workers": report.scheduler.workers,
        "jobs": jobs.len(),
        "steals": report.scheduler.steals,
        "wall_seconds": report.scheduler.wall_seconds,
    });
    let encoding_stats = serde_json::json!({
        "hits": report.encoding_hits,
        "misses": report.encoding_misses,
        "entries": report.encoding_entries,
    });
    let bench = serde_json::json!({
        "seed": seed,
        "scale": scale,
        "threads": threads,
        "hardware_threads": kcb_lm::pool::hardware_threads(),
        "total_seconds": total_secs,
        "scheduler": scheduler_stats,
        "cache": report.cache,
        "encoding_cache": encoding_stats,
        "artifacts": group("artifact:"),
        "cells": group("cell:"),
        "providers": group("provider:"),
    });
    let bench_text = serde_json::to_string_pretty(&bench).expect("serializable");
    if let Err(e) = std::fs::create_dir_all("results")
        .and_then(|()| std::fs::write(&bench_path, &bench_text))
    {
        eprintln!("error writing {}: {e}", bench_path.display());
        failed = true;
    } else {
        eprintln!("# wrote {}", bench_path.display());
    }
    if ids.iter().any(|id| id == "summary") {
        println!("\n## Benchmark timings ({})\n{bench_text}", bench_path.display());
    }
    eprintln!("# total {:.1}s", total_secs);
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
