//! `chebi-gen` — generate, validate and export synthetic ChEBI-like
//! ontologies from the command line.
//!
//! ```text
//! chebi-gen --scale 0.01 --seed 7 --obo out.obo        # OBO export
//! chebi-gen --scale 0.01 --stats                       # Tables A1/A3-style summary
//! chebi-gen --scale 0.01 --validate                    # structural checks
//! chebi-gen --scale 0.01 --dot water.dot --center 120  # Graphviz neighbourhood
//! ```

use kcb_ontology::{dot, obo, validate, EntityId, OntologyStats, SyntheticConfig, SyntheticGenerator};
use std::process::ExitCode;

const USAGE: &str = "\
chebi-gen — synthetic ChEBI-like ontology generator

USAGE: chebi-gen [OPTIONS]

OPTIONS:
  --scale S        size relative to real ChEBI (default 0.01)
  --seed N         generator seed (default 42)
  --obo PATH       write the graph in OBO format
  --dot PATH       write a Graphviz neighbourhood (use with --center/--radius)
  --center ID      entity id at the centre of the DOT export (default 0)
  --radius N       neighbourhood hops for the DOT export (default 2)
  --stats          print sub-ontology and relationship statistics
  --validate       run structural checks (non-zero exit on issues)";

fn main() -> ExitCode {
    let mut scale = 0.01f64;
    let mut seed = 42u64;
    let mut obo_path: Option<String> = None;
    let mut dot_path: Option<String> = None;
    let mut center = 0u32;
    let mut radius = 2usize;
    let mut stats = false;
    let mut do_validate = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut next = |flag: &str| {
            it.next().ok_or_else(|| format!("{flag} needs a value"))
        };
        let result: Result<(), String> = (|| {
            match a.as_str() {
                "--scale" => scale = next("--scale")?.parse().map_err(|e| format!("bad scale: {e}"))?,
                "--seed" => seed = next("--seed")?.parse().map_err(|e| format!("bad seed: {e}"))?,
                "--obo" => obo_path = Some(next("--obo")?),
                "--dot" => dot_path = Some(next("--dot")?),
                "--center" => center = next("--center")?.parse().map_err(|e| format!("bad center: {e}"))?,
                "--radius" => radius = next("--radius")?.parse().map_err(|e| format!("bad radius: {e}"))?,
                "--stats" => stats = true,
                "--validate" => do_validate = true,
                "--help" | "-h" => {
                    println!("{USAGE}");
                    std::process::exit(0);
                }
                other => return Err(format!("unknown flag {other}")),
            }
            Ok(())
        })();
        if let Err(e) = result {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    }

    let generator = match SyntheticGenerator::new(SyntheticConfig { scale, seed }) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let o = generator.generate();
    eprintln!("generated {} entities, {} triples (scale {scale}, seed {seed})", o.n_entities(), o.n_triples());

    if stats {
        let s = OntologyStats::compute(&o);
        print!("{}", s.subontology_table().render());
        print!("{}", s.relation_table().render());
    }
    if let Some(path) = obo_path {
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) = obo::write(&o, std::io::BufWriter::new(file)) {
            eprintln!("error writing OBO: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = dot_path {
        if center as usize >= o.n_entities() {
            eprintln!("error: --center {center} out of range (< {})", o.n_entities());
            return ExitCode::FAILURE;
        }
        let file = match std::fs::File::create(&path) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("error creating {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        if let Err(e) =
            dot::write_neighbourhood(&o, EntityId(center), radius, std::io::BufWriter::new(file))
        {
            eprintln!("error writing DOT: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {path} (center '{}', radius {radius})", o.name(EntityId(center)));
    }
    if do_validate {
        let report = validate::validate(&o);
        if report.is_clean() {
            println!("validation: clean");
        } else {
            println!("validation: {} issue(s)", report.issues.len());
            for issue in report.issues.iter().take(20) {
                println!("  {issue:?}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
