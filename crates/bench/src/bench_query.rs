//! `repro bench-query` — the raw-speed query-path microbenchmark.
//!
//! Measures steady-state latency and throughput of the four query shapes
//! the curation workflows issue against a warm lab: embedding
//! nearest-neighbour lookups (f32 and, with `--quant`, int8), triple
//! classification through the fitted random forest, and BERT sequence
//! scoring. Each query runs under a `query.<kind>` span so the
//! percentiles come from the same [`kcb_obs`] aggregation the profiler
//! uses; throughput is wall-clock over the whole leg, normalised per
//! worker thread. The result document is written to
//! `results/bench_query.json` by the binary.
//!
//! Each leg folds its outputs into a checksum that is included in the
//! document: since queries are pure functions of the lab seed, the
//! checksum must be identical with and without mmap loading, at any
//! thread count, making the report double as a determinism witness.

use kcb_core::adapt::Adaptation;
use kcb_core::compose::{self, TokenAvgEncoder};
use kcb_core::lab::Lab;
use kcb_core::task::TaskKind;
use kcb_embed::{EmbeddingModel, QuantizedEmbeddingTable};
use serde_json::{json, Value};
use std::time::Instant;

/// Version of the `bench_query.json` shape.
pub const SCHEMA_VERSION: u64 = 1;

/// One measured query kind.
struct Leg {
    kind: &'static str,
    count: usize,
    wall_s: f64,
    checksum: f64,
}

/// Runs `n` queries of one kind, each under a `query.<kind>` span.
/// `one` returns a scalar folded into the leg checksum.
fn timed(kind: &'static str, n: usize, mut one: impl FnMut(usize) -> f64) -> Leg {
    let mut checksum = 0.0f64;
    let t0 = Instant::now();
    for i in 0..n {
        let _span = kcb_obs::span("query", format!("query.{kind}"));
        checksum += one(i);
    }
    Leg { kind, count: n, wall_s: t0.elapsed().as_secs_f64(), checksum }
}

/// Runs the query benchmark against `lab` and returns the
/// `bench_query.json` document. Owns the telemetry recorder for the
/// duration of the run (resets it, drains it at the end).
pub fn run(lab: &Lab, quant: bool, threads: usize, fast: bool) -> Value {
    let (nn_q, cls_q, bert_q) = if fast { (32, 64, 8) } else { (128, 256, 24) };
    let was_enabled = kcb_obs::enabled();
    kcb_obs::reset();
    kcb_obs::set_enabled(true);

    let shared = lab.shared();
    let o = shared.ontology();
    let table = shared.glove_chem();
    let split = shared.split(TaskKind::RandomNegatives);
    let mut legs: Vec<Leg> = Vec::new();

    // Nearest-neighbour lookups over the most frequent vocabulary tokens
    // (the vocabulary is ordered by frequency).
    let toks: Vec<String> = (0..nn_q.min(table.vocab_size()) as u32)
        .map(|i| table.vocab().token(i).to_string())
        .collect();
    legs.push(timed("nn-f32", toks.len(), |i| {
        table.nearest(&toks[i], 10).iter().map(|(_, s)| *s as f64).sum()
    }));
    if quant {
        // Quantization happens outside the timed region: the table is a
        // build-once artifact, the queries are the steady state.
        let q = QuantizedEmbeddingTable::quantize(table);
        legs.push(timed("nn-int8", toks.len(), |i| {
            q.nearest(&toks[i], 10).iter().map(|(_, s)| *s as f64).sum()
        }));
    }

    // Triple classification: encode with the same (model, adaptation)
    // pair the forest was fitted on, then score.
    let forest_run = shared.forest_run(TaskKind::RandomNegatives, "glove-chem", "naive");
    let enc = TokenAvgEncoder::new(shared.embedding("glove-chem"), Adaptation::Naive);
    let n = cls_q.min(split.test.len());
    legs.push(timed("triple-classify", n, |i| {
        let v = compose::triple_vector(o, split.test[i].triple, &enc);
        f64::from(forest_run.forest.predict_proba(&v))
    }));

    // BERT sequence scoring over tokenized test triples.
    let (bert, _) = lab.bert();
    let wp = shared.wordpiece();
    let n = bert_q.min(split.test.len());
    legs.push(timed("bert-cls", n, |i| {
        let ids = compose::triple_token_ids(o, split.test[i].triple, wp);
        f64::from(bert.predict_proba(&ids))
    }));

    let telemetry = kcb_obs::drain();
    kcb_obs::set_enabled(was_enabled);
    let stats = kcb_obs::profile::span_stats(&telemetry);
    let kinds: Vec<(String, Value)> = legs
        .iter()
        .map(|leg| {
            let s = stats.get(&format!("query.{}", leg.kind)).copied().unwrap_or_default();
            let row = json!({
                "count": leg.count,
                "total_s": leg.wall_s,
                "qps_per_core": leg.count as f64 / leg.wall_s.max(1e-9) / threads as f64,
                "p50_s": s.p50_s,
                "p95_s": s.p95_s,
                "p99_s": s.p99_s,
                "checksum": leg.checksum,
            });
            (leg.kind.to_string(), row)
        })
        .collect();
    json!({
        "schema_version": SCHEMA_VERSION,
        "threads": threads,
        "quant": quant,
        "fast": fast,
        "kinds": Value::Object(kinds),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_core::lab::LabConfig;

    #[test]
    fn query_bench_reports_every_kind() {
        let lab = Lab::new(LabConfig::tiny());
        let doc = run(&lab, true, 1, true);
        assert_eq!(doc["schema_version"], json!(SCHEMA_VERSION));
        for kind in ["nn-f32", "nn-int8", "triple-classify", "bert-cls"] {
            let row = &doc["kinds"][kind];
            assert!(row["count"].as_u64().unwrap() > 0, "{kind}: {row}");
            assert!(row["qps_per_core"].as_f64().unwrap() > 0.0, "{kind}: {row}");
            assert!(row["p99_s"].as_f64().unwrap() >= row["p50_s"].as_f64().unwrap());
        }
        // Without --quant the int8 leg is absent and the rest unchanged.
        let doc2 = run(&lab, false, 1, true);
        assert!(doc2["kinds"]["nn-int8"].is_null());
        assert_eq!(doc["kinds"]["nn-f32"]["checksum"], doc2["kinds"]["nn-f32"]["checksum"]);
    }
}
