//! Argument parsing and validation for the `repro` binary.
//!
//! Lives in the library (rather than `bin/repro.rs`) so the parser and
//! every rejection path are unit-testable: `repro` itself only turns a
//! returned `Err` into an exit code. Errors are one-liners that name the
//! offending value — the binary appends the usage text.

use std::path::PathBuf;

/// Parsed `repro` command line.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Args {
    /// Requested artifact ids, in order (aliases not yet expanded).
    pub ids: Vec<String>,
    /// `--scale`: ontology scale override.
    pub scale: Option<f64>,
    /// `--seed`: master-seed override.
    pub seed: Option<u64>,
    /// `--threads`: scheduler worker count override.
    pub threads: Option<usize>,
    /// `--out`: per-artifact JSON output directory.
    pub out: Option<PathBuf>,
    /// `--md`: combined Markdown report path.
    pub md: Option<PathBuf>,
    /// `--trace`: Chrome trace-event timeline output path.
    pub trace: Option<PathBuf>,
    /// `--metrics`: write `results/run_meta.json`.
    pub metrics: bool,
    /// `--profile`: print the span profile table to stdout.
    pub profile: bool,
    /// `--fast`: tiny smoke-test configuration.
    pub fast: bool,
    /// `--cache-dir`: checkpoint-store directory (default `results/ckpt`).
    pub cache_dir: Option<PathBuf>,
    /// `--cold`: ignore existing checkpoints, retrain and overwrite them.
    pub cold: bool,
    /// `bench-query`: run the query-path microbenchmark instead of
    /// assembling artifacts.
    pub bench_query: bool,
    /// `serve`: freeze a snapshot and run the NDJSON daemon.
    pub serve: bool,
    /// `serve-bench`: run the serving-engine load harness and write
    /// `results/bench_serve.json`.
    pub serve_bench: bool,
    /// `serve-top`: poll a running daemon's `stats` verb and render a
    /// refreshing terminal table.
    pub serve_top: bool,
    /// `--interval-ms`: polling interval for `serve-top` (default 1000).
    pub interval_ms: Option<u64>,
    /// `--samples`: number of `serve-top` frames (0 = until shutdown).
    pub samples: Option<u64>,
    /// `--slow-us`: flight-recorder slow-request threshold for `serve`.
    pub slow_us: Option<u64>,
    /// `--port`: TCP port for `serve` / `serve-top` (default 7878).
    pub port: Option<u16>,
    /// `--socket`: Unix-socket path for `serve` (unix only).
    pub socket: Option<PathBuf>,
    /// `--clients`: concurrent client connections for `serve-bench`.
    pub clients: Option<usize>,
    /// `--requests`: requests per client for `serve-bench`.
    pub requests: Option<usize>,
    /// `--queue-cap`: bounded request-queue capacity (admission control).
    pub queue_cap: Option<usize>,
    /// `--batch-max`: largest micro-batch a worker drains at once.
    pub batch_max: Option<usize>,
    /// `--quant`: add the int8-quantized legs to `bench-query`.
    pub quant: bool,
    /// `--no-mmap`: disable zero-copy mmap checkpoint loading (decode
    /// containers through the byte reader instead).
    pub no_mmap: bool,
    /// `--cache-cap BYTES`: evict oldest checkpoints until the store fits.
    pub cache_cap: Option<u64>,
    /// `sweep`: compile a variant grid into one structure-shared DAG.
    pub sweep: bool,
    /// `--grid`: sweep grid spec (`seeds=7,8;scenarios=0,2;...`), parsed
    /// and validated here.
    pub grid: Option<String>,
    /// `--plan`: print the sweep dedup plan and exit without running.
    pub plan_only: bool,
    /// `--baseline`: also run each variant sequentially in a fresh lab
    /// and record the measured speedup in `results/bench_sweep.json`.
    pub baseline: bool,
    /// `runs [list|show|diff]`: query the run index instead of running.
    pub runs: Option<RunsCmd>,
    /// `--runs-dir`: run-journal root (default `results/runs`).
    pub runs_dir: Option<PathBuf>,
    /// `--no-journal`: disable run journaling for this artifact run.
    pub no_journal: bool,
    /// `--list`: list artifact ids and exit.
    pub list: bool,
    /// `--help` / `-h`.
    pub help: bool,
}

/// The `repro runs` query surface over `results/runs/index.jsonl`.
#[derive(Debug, Clone, PartialEq)]
pub enum RunsCmd {
    /// Latest manifest per run, newest first.
    List,
    /// Full manifest of one run id (prefixes accepted when unambiguous).
    Show(String),
    /// Field-by-field manifest diff of two run ids.
    Diff(String, String),
}

impl Args {
    /// Whether any flag requests telemetry recording.
    pub fn wants_telemetry(&self) -> bool {
        self.trace.is_some() || self.metrics || self.profile
    }
}

/// Parses `repro` arguments (without the program name). Flag values are
/// validated here so every bad input fails before any work starts.
pub fn parse<I>(args: I) -> Result<Args, String>
where
    I: IntoIterator<Item = String>,
{
    let mut out = Args::default();
    let mut it = args.into_iter().peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => out.list = true,
            "--fast" => out.fast = true,
            "--cold" => out.cold = true,
            "--quant" => out.quant = true,
            "--no-mmap" => out.no_mmap = true,
            "--no-journal" => out.no_journal = true,
            "bench-query" => out.bench_query = true,
            "sweep" => out.sweep = true,
            "--plan" => out.plan_only = true,
            "--baseline" => out.baseline = true,
            "--grid" => {
                let v = it.next().ok_or("--grid needs a spec (key=v1,v2;key=...)")?;
                // Parse eagerly so a bad grid fails before any work starts.
                kcb_core::experiment::sweep::GridSpec::parse(&v)
                    .map_err(|e| format!("--grid: {e}"))?;
                out.grid = Some(v);
            }
            "serve" => out.serve = true,
            "serve-bench" => out.serve_bench = true,
            "serve-top" => out.serve_top = true,
            "runs" => {
                // `runs` with no (or a flag) next token defaults to `list`.
                let sub = match it.peek() {
                    Some(s) if !s.starts_with('-') => it.next().expect("peeked"),
                    _ => "list".to_string(),
                };
                out.runs = Some(match sub.as_str() {
                    "list" => RunsCmd::List,
                    "show" => RunsCmd::Show(it.next().ok_or("runs show needs a run id")?),
                    "diff" => RunsCmd::Diff(
                        it.next().ok_or("runs diff needs two run ids")?,
                        it.next().ok_or("runs diff needs two run ids")?,
                    ),
                    other => {
                        return Err(format!("unknown runs subcommand '{other}' (list|show|diff)"))
                    }
                });
            }
            "--runs-dir" => {
                let v = it.next().ok_or("--runs-dir needs a directory")?;
                if v.is_empty() {
                    return Err("--runs-dir needs a non-empty directory".to_string());
                }
                let p = PathBuf::from(&v);
                if p.is_file() {
                    return Err(format!("--runs-dir {v} is a file, not a directory"));
                }
                out.runs_dir = Some(p);
            }
            "--port" => {
                let v = it.next().ok_or("--port needs a value")?;
                out.port = Some(v.parse().map_err(|_| format!("bad port {v}"))?);
            }
            "--socket" => {
                let v = it.next().ok_or("--socket needs a path")?;
                if v.is_empty() {
                    return Err("--socket needs a non-empty path".to_string());
                }
                out.socket = Some(v.into());
            }
            "--clients" => {
                let v = it.next().ok_or("--clients needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad client count {v}"))?;
                if n == 0 {
                    return Err("--clients must be at least 1, got 0".to_string());
                }
                out.clients = Some(n);
            }
            "--requests" => {
                let v = it.next().ok_or("--requests needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad request count {v}"))?;
                if n == 0 {
                    return Err("--requests must be at least 1, got 0".to_string());
                }
                out.requests = Some(n);
            }
            "--queue-cap" => {
                let v = it.next().ok_or("--queue-cap needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad queue cap {v}"))?;
                if n == 0 {
                    return Err("--queue-cap must be at least 1, got 0".to_string());
                }
                out.queue_cap = Some(n);
            }
            "--batch-max" => {
                let v = it.next().ok_or("--batch-max needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad batch max {v}"))?;
                if n == 0 {
                    return Err("--batch-max must be at least 1, got 0".to_string());
                }
                out.batch_max = Some(n);
            }
            "--interval-ms" => {
                let v = it.next().ok_or("--interval-ms needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad interval {v}"))?;
                if n == 0 {
                    return Err("--interval-ms must be at least 1, got 0".to_string());
                }
                out.interval_ms = Some(n);
            }
            "--samples" => {
                let v = it.next().ok_or("--samples needs a value")?;
                out.samples = Some(v.parse().map_err(|_| format!("bad sample count {v}"))?);
            }
            "--slow-us" => {
                let v = it.next().ok_or("--slow-us needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("bad threshold {v}"))?;
                if n == 0 {
                    return Err("--slow-us must be at least 1, got 0".to_string());
                }
                out.slow_us = Some(n);
            }
            "--metrics" => out.metrics = true,
            "--profile" => out.profile = true,
            "--help" | "-h" => out.help = true,
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                let s: f64 = v.parse().map_err(|_| format!("bad scale {v}"))?;
                if !(s > 0.0 && s <= 4.0) {
                    return Err(format!("--scale must be in (0, 4], got {v}"));
                }
                out.scale = Some(s);
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                out.seed = Some(v.parse().map_err(|_| format!("bad seed {v}"))?);
            }
            "--threads" => {
                let v = it.next().ok_or("--threads needs a value")?;
                let t: usize = v.parse().map_err(|_| format!("bad thread count {v}"))?;
                if t == 0 {
                    return Err("--threads must be at least 1, got 0".to_string());
                }
                out.threads = Some(t);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a directory")?;
                out.out = Some(v.into());
            }
            "--cache-dir" => {
                let v = it.next().ok_or("--cache-dir needs a directory")?;
                if v.is_empty() {
                    return Err("--cache-dir needs a non-empty directory".to_string());
                }
                let p = PathBuf::from(&v);
                if p.is_file() {
                    return Err(format!("--cache-dir {v} is a file, not a directory"));
                }
                out.cache_dir = Some(p);
            }
            "--cache-cap" => {
                let v = it.next().ok_or("--cache-cap needs a byte count")?;
                let cap: u64 = v.parse().map_err(|_| format!("bad cache cap {v}"))?;
                if cap == 0 {
                    return Err("--cache-cap must be at least 1 byte, got 0".to_string());
                }
                out.cache_cap = Some(cap);
            }
            "--md" => {
                let v = it.next().ok_or("--md needs a file path")?;
                out.md = Some(v.into());
            }
            "--trace" => {
                let v = it.next().ok_or("--trace needs a file path")?;
                out.trace = Some(v.into());
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => out.ids.push(other.to_string()),
        }
    }
    if out.quant && !out.bench_query {
        // Quantization is an inference-only query-path option; keeping it
        // out of artifact runs guarantees f32 artifact bytes never depend
        // on the flag.
        return Err("--quant only applies to the bench-query subcommand".to_string());
    }
    if out.bench_query && !out.ids.is_empty() {
        return Err(format!("bench-query runs alone, got artifact '{}'", out.ids[0]));
    }
    let subcommands = usize::from(out.bench_query)
        + usize::from(out.sweep)
        + usize::from(out.serve)
        + usize::from(out.serve_bench)
        + usize::from(out.serve_top)
        + usize::from(out.runs.is_some());
    if subcommands > 1 {
        return Err(
            "bench-query, sweep, serve, serve-bench, serve-top and runs are mutually exclusive"
                .to_string(),
        );
    }
    if out.sweep && out.grid.is_none() {
        return Err("sweep needs --grid (e.g. --grid \"seeds=7,8;scenarios=0,2\")".to_string());
    }
    if out.sweep && !out.ids.is_empty() {
        return Err(format!("sweep runs alone, got artifact '{}'", out.ids[0]));
    }
    if (out.grid.is_some() || out.plan_only || out.baseline) && !out.sweep {
        return Err("--grid / --plan / --baseline only apply to the sweep subcommand".to_string());
    }
    if out.plan_only && out.baseline {
        return Err("--plan is a dry run; it cannot be combined with --baseline".to_string());
    }
    if out.runs.is_some() && !out.ids.is_empty() {
        return Err(format!("runs queries run alone, got artifact '{}'", out.ids[0]));
    }
    if out.no_journal
        && (out.runs.is_some() || out.bench_query || out.serve || out.serve_bench || out.serve_top)
    {
        return Err("--no-journal only applies to artifact runs".to_string());
    }
    if out.port.is_some() && !(out.serve || out.serve_top) {
        return Err("--port only applies to the serve / serve-top subcommands".to_string());
    }
    if out.socket.is_some() && !out.serve {
        return Err("--socket only applies to the serve subcommand".to_string());
    }
    if (out.interval_ms.is_some() || out.samples.is_some()) && !out.serve_top {
        return Err("--interval-ms / --samples only apply to the serve-top subcommand".to_string());
    }
    if out.slow_us.is_some() && !out.serve {
        return Err("--slow-us only applies to the serve subcommand".to_string());
    }
    if out.serve_top && !out.ids.is_empty() {
        return Err(format!("serve-top runs alone, got artifact '{}'", out.ids[0]));
    }
    if (out.clients.is_some() || out.requests.is_some()) && !out.serve_bench {
        return Err("--clients / --requests only apply to the serve-bench subcommand".to_string());
    }
    if (out.queue_cap.is_some() || out.batch_max.is_some()) && !(out.serve || out.serve_bench) {
        return Err("--queue-cap / --batch-max only apply to serve / serve-bench".to_string());
    }
    // `serve` accepts artifact ids (they are assembled and preloaded into
    // the snapshot); `serve-bench` runs alone like `bench-query`.
    if out.serve_bench && !out.ids.is_empty() {
        return Err(format!("serve-bench runs alone, got artifact '{}'", out.ids[0]));
    }
    Ok(out)
}

/// Every runnable artifact id, lowercase, in listing order.
pub fn known_ids() -> Vec<&'static str> {
    kcb_core::experiment::ALL_IDS
        .iter()
        .chain(kcb_core::experiment::ABLATION_IDS)
        .chain(kcb_core::experiment::EXTENSION_IDS)
        .chain(std::iter::once(&kcb_core::experiment::SUMMARY_ID))
        .copied()
        .collect()
}

/// Expands the `all` / `ablations` aliases in place (preserving request
/// order, deduplicating the `all` block like the historical behaviour).
pub fn expand_aliases(ids: &mut Vec<String>) {
    if let Some(pos) = ids.iter().position(|i| i == "all") {
        ids.splice(pos..=pos, kcb_core::experiment::ALL_IDS.iter().map(|s| s.to_string()));
        ids.dedup();
    }
    if let Some(pos) = ids.iter().position(|i| i == "ablations") {
        ids.remove(pos);
        ids.extend(kcb_core::experiment::ABLATION_IDS.iter().map(|s| s.to_string()));
    }
}

/// Rejects ids outside the artifact registry, naming the first offender.
pub fn validate_ids(ids: &[String]) -> Result<(), String> {
    let known: Vec<String> = known_ids().iter().map(|s| s.to_ascii_lowercase()).collect();
    for id in ids {
        if !known.contains(&id.to_ascii_lowercase()) {
            return Err(format!("unknown artifact '{id}' (see --list)"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(args: &[&str]) -> Result<Args, String> {
        parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_a_full_command_line() {
        let a = p(&[
            "all", "--fast", "--threads", "4", "--scale", "0.05", "--seed", "7", "--trace",
            "t.json", "--metrics", "--profile", "--out", "results",
        ])
        .unwrap();
        assert_eq!(a.ids, vec!["all"]);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.scale, Some(0.05));
        assert_eq!(a.seed, Some(7));
        assert_eq!(a.trace.as_deref(), Some(std::path::Path::new("t.json")));
        assert!(a.metrics && a.profile && a.fast);
        assert!(a.wants_telemetry());
        assert!(!p(&["all"]).unwrap().wants_telemetry());
    }

    #[test]
    fn rejects_zero_threads_naming_the_value() {
        let e = p(&["all", "--threads", "0"]).unwrap_err();
        assert!(e.contains("--threads") && e.contains('0'), "{e}");
    }

    #[test]
    fn rejects_bad_scales_naming_the_value() {
        for bad in ["0", "-1", "nan", "inf", "4.5"] {
            let e = p(&["all", "--scale", bad]).unwrap_err();
            assert!(e.contains("scale"), "{bad}: {e}");
        }
        assert_eq!(p(&["--scale", "0.5"]).unwrap().scale, Some(0.5));
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(p(&["--bogus"]).unwrap_err().contains("--bogus"));
        assert!(p(&["--trace"]).unwrap_err().contains("--trace"));
        assert!(p(&["--threads"]).unwrap_err().contains("--threads"));
        assert!(p(&["--cache-dir"]).unwrap_err().contains("--cache-dir"));
    }

    #[test]
    fn parses_cache_flags() {
        let a = p(&["table4", "--cache-dir", "warm", "--cold"]).unwrap();
        assert_eq!(a.cache_dir.as_deref(), Some(std::path::Path::new("warm")));
        assert!(a.cold);
        let a = p(&["table4"]).unwrap();
        assert_eq!(a.cache_dir, None);
        assert!(!a.cold);
    }

    #[test]
    fn rejects_bad_cache_dirs_naming_the_value() {
        let e = p(&["--cache-dir", ""]).unwrap_err();
        assert!(e.contains("--cache-dir"), "{e}");
        // A path that names an existing *file* is rejected at parse time.
        let file = std::env::temp_dir().join(format!("kcb-cli-test-{}", std::process::id()));
        std::fs::write(&file, b"x").unwrap();
        let e = p(&["--cache-dir", file.to_str().unwrap()]).unwrap_err();
        assert!(e.contains("is a file"), "{e}");
        std::fs::remove_file(&file).ok();
    }

    #[test]
    fn parses_query_path_flags() {
        let a = p(&["bench-query", "--quant", "--no-mmap", "--fast", "--cache-cap", "1024"])
            .unwrap();
        assert!(a.bench_query && a.quant && a.no_mmap && a.fast);
        assert_eq!(a.cache_cap, Some(1024));
        assert!(a.ids.is_empty());
        let a = p(&["table4"]).unwrap();
        assert!(!a.bench_query && !a.quant && !a.no_mmap && a.cache_cap.is_none());
    }

    #[test]
    fn quant_requires_bench_query() {
        let e = p(&["table4", "--quant"]).unwrap_err();
        assert!(e.contains("--quant") && e.contains("bench-query"), "{e}");
        let e = p(&["--quant"]).unwrap_err();
        assert!(e.contains("bench-query"), "{e}");
    }

    #[test]
    fn bench_query_rejects_artifact_ids_and_bad_caps() {
        let e = p(&["bench-query", "table4"]).unwrap_err();
        assert!(e.contains("table4"), "{e}");
        let e = p(&["bench-query", "--cache-cap", "0"]).unwrap_err();
        assert!(e.contains("--cache-cap"), "{e}");
        let e = p(&["bench-query", "--cache-cap", "lots"]).unwrap_err();
        assert!(e.contains("lots"), "{e}");
        assert!(p(&["bench-query", "--cache-cap"]).unwrap_err().contains("--cache-cap"));
    }

    #[test]
    fn parses_serve_flags() {
        let a = p(&["serve", "table2", "--port", "9000", "--socket", "/tmp/kcb.sock",
            "--queue-cap", "128", "--batch-max", "16"])
            .unwrap();
        assert!(a.serve && !a.serve_bench && !a.bench_query);
        assert_eq!(a.ids, vec!["table2"]);
        assert_eq!(a.port, Some(9000));
        assert_eq!(a.socket.as_deref(), Some(std::path::Path::new("/tmp/kcb.sock")));
        assert_eq!(a.queue_cap, Some(128));
        assert_eq!(a.batch_max, Some(16));
        let a = p(&["serve-bench", "--clients", "4", "--requests", "100", "--fast"]).unwrap();
        assert!(a.serve_bench && a.fast);
        assert_eq!(a.clients, Some(4));
        assert_eq!(a.requests, Some(100));
    }

    #[test]
    fn serve_flags_are_validated() {
        let e = p(&["serve", "serve-bench"]).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = p(&["bench-query", "serve"]).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = p(&["--port", "9000"]).unwrap_err();
        assert!(e.contains("serve"), "{e}");
        let e = p(&["serve", "--clients", "4"]).unwrap_err();
        assert!(e.contains("serve-bench"), "{e}");
        let e = p(&["table2", "--queue-cap", "4"]).unwrap_err();
        assert!(e.contains("serve"), "{e}");
        let e = p(&["serve-bench", "table2"]).unwrap_err();
        assert!(e.contains("table2"), "{e}");
        for bad in [["serve", "--port", "notaport"], ["serve-bench", "--clients", "0"],
            ["serve-bench", "--requests", "0"], ["serve", "--queue-cap", "0"],
            ["serve", "--batch-max", "0"]]
        {
            assert!(p(&bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_serve_top_flags() {
        let a = p(&["serve-top", "--port", "9000", "--interval-ms", "250", "--samples", "10"])
            .unwrap();
        assert!(a.serve_top && !a.serve && !a.serve_bench);
        assert_eq!(a.port, Some(9000));
        assert_eq!(a.interval_ms, Some(250));
        assert_eq!(a.samples, Some(10));
        // --samples 0 means "poll until the daemon goes away".
        assert_eq!(p(&["serve-top", "--samples", "0"]).unwrap().samples, Some(0));
        let a = p(&["serve", "--slow-us", "2500"]).unwrap();
        assert_eq!(a.slow_us, Some(2500));
    }

    #[test]
    fn serve_top_flags_are_validated() {
        let e = p(&["serve-top", "serve"]).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = p(&["serve-top", "table2"]).unwrap_err();
        assert!(e.contains("table2"), "{e}");
        let e = p(&["--interval-ms", "250"]).unwrap_err();
        assert!(e.contains("serve-top"), "{e}");
        let e = p(&["serve", "--samples", "3"]).unwrap_err();
        assert!(e.contains("serve-top"), "{e}");
        let e = p(&["serve-top", "--slow-us", "100"]).unwrap_err();
        assert!(e.contains("serve"), "{e}");
        let e = p(&["serve-top", "--socket", "/tmp/x.sock"]).unwrap_err();
        assert!(e.contains("--socket"), "{e}");
        for bad in [["serve-top", "--interval-ms", "0"], ["serve", "--slow-us", "0"],
            ["serve-top", "--samples", "many"]]
        {
            assert!(p(&bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn parses_sweep_flags() {
        let a = p(&["sweep", "--grid", "seeds=7,8;scenarios=0,2;paradigms=sup,icl", "--fast"])
            .unwrap();
        assert!(a.sweep && a.fast && !a.plan_only && !a.baseline);
        assert_eq!(a.grid.as_deref(), Some("seeds=7,8;scenarios=0,2;paradigms=sup,icl"));
        let a = p(&["sweep", "--grid", "scenarios=0", "--plan"]).unwrap();
        assert!(a.plan_only);
        let a = p(&["sweep", "--grid", "scenarios=0", "--baseline", "--no-journal"]).unwrap();
        assert!(a.baseline && a.no_journal, "sweep composes with --no-journal");
    }

    #[test]
    fn sweep_flags_are_validated() {
        let e = p(&["sweep"]).unwrap_err();
        assert!(e.contains("--grid"), "{e}");
        let e = p(&["sweep", "--grid", "scenarios=9"]).unwrap_err();
        assert!(e.contains("scenario"), "bad grids fail at parse time: {e}");
        let e = p(&["sweep", "--grid", "scales=5"]).unwrap_err();
        assert!(e.contains("scale"), "{e}");
        let e = p(&["sweep", "--grid", "scenarios=0", "table2"]).unwrap_err();
        assert!(e.contains("table2"), "{e}");
        let e = p(&["sweep", "bench-query", "--grid", "scenarios=0"]).unwrap_err();
        assert!(e.contains("mutually exclusive"), "{e}");
        let e = p(&["--grid", "scenarios=0"]).unwrap_err();
        assert!(e.contains("sweep"), "{e}");
        let e = p(&["table2", "--plan"]).unwrap_err();
        assert!(e.contains("sweep"), "{e}");
        let e = p(&["--baseline"]).unwrap_err();
        assert!(e.contains("sweep"), "{e}");
        let e = p(&["sweep", "--grid", "scenarios=0", "--plan", "--baseline"]).unwrap_err();
        assert!(e.contains("dry run"), "{e}");
    }

    #[test]
    fn parses_runs_subcommands() {
        assert_eq!(p(&["runs"]).unwrap().runs, Some(RunsCmd::List));
        assert_eq!(p(&["runs", "list"]).unwrap().runs, Some(RunsCmd::List));
        let a = p(&["runs", "--runs-dir", "r"]).unwrap();
        assert_eq!(a.runs, Some(RunsCmd::List));
        assert_eq!(a.runs_dir.as_deref(), Some(std::path::Path::new("r")));
        assert_eq!(
            p(&["runs", "show", "deadbeef-1"]).unwrap().runs,
            Some(RunsCmd::Show("deadbeef-1".to_string()))
        );
        assert_eq!(
            p(&["runs", "diff", "a-1", "b-2"]).unwrap().runs,
            Some(RunsCmd::Diff("a-1".to_string(), "b-2".to_string()))
        );
    }

    #[test]
    fn runs_subcommand_is_validated() {
        let e = p(&["runs", "frobnicate"]).unwrap_err();
        assert!(e.contains("frobnicate"), "{e}");
        assert!(p(&["runs", "show"]).unwrap_err().contains("run id"));
        assert!(p(&["runs", "diff", "only-one"]).unwrap_err().contains("two run ids"));
        let e = p(&["runs", "list", "table2"]).unwrap_err();
        assert!(e.contains("table2"), "{e}");
        let e = p(&["runs", "bench-query"]).unwrap_err();
        assert!(e.contains("bench-query"), "{e}");
        assert!(p(&["--runs-dir", ""]).unwrap_err().contains("--runs-dir"));
    }

    #[test]
    fn journal_flags_are_validated() {
        let a = p(&["all", "--no-journal", "--runs-dir", "elsewhere"]).unwrap();
        assert!(a.no_journal);
        assert_eq!(a.runs_dir.as_deref(), Some(std::path::Path::new("elsewhere")));
        assert!(!p(&["all"]).unwrap().no_journal);
        let e = p(&["bench-query", "--no-journal"]).unwrap_err();
        assert!(e.contains("--no-journal"), "{e}");
        let e = p(&["runs", "--no-journal"]).unwrap_err();
        assert!(e.contains("--no-journal"), "{e}");
    }

    #[test]
    fn id_validation_names_the_offender() {
        assert!(validate_ids(&["table2".into(), "Fig3".into()]).is_ok());
        let e = validate_ids(&["table2".into(), "tabel3".into()]).unwrap_err();
        assert!(e.contains("tabel3"), "{e}");
    }

    #[test]
    fn aliases_expand_in_request_order() {
        let mut ids = vec!["summary".to_string(), "all".to_string(), "ablations".to_string()];
        expand_aliases(&mut ids);
        assert_eq!(ids[0], "summary");
        assert_eq!(ids[1], "table2");
        assert!(ids.contains(&"ablation-dim".to_string()));
        assert!(validate_ids(&ids).is_ok());
    }

    #[test]
    fn every_known_id_has_a_description() {
        for id in known_ids() {
            assert!(
                kcb_core::experiment::describe(id).is_some(),
                "{id} is listed but has no description"
            );
        }
        assert!(kcb_core::experiment::describe("nope").is_none());
    }
}
