//! Append-only, self-verifying run journal + run index.
//!
//! Every scheduled run owns a directory `results/runs/<config-digest>/`
//! holding a line-framed `journal.jsonl`: after each provider / cell /
//! artifact job commits, the scheduler's completion hook appends one
//! checksummed [`JobRecord`] and fsyncs the line. A crash — OOM, SIGKILL,
//! power loss, `KCB_FAULT` — can therefore lose at most a torn final
//! line, and the framing detects and drops it on replay, never trusting
//! it. On the next run, [`load`] replays the journal and
//! `experiment::plan` marks already-completed jobs as satisfied, so an
//! interrupted `repro all` resumes mid-DAG: cells become no-ops (their
//! memoised outputs come back through the derived checkpoint that
//! assembly jobs persist incrementally), and assembled artifacts are
//! replayed byte-for-byte from `artifacts/<slug>.json`, each one verified
//! against the FNV-64 digest journaled at commit time.
//!
//! Record framing: each line is `{"rec":<body>,"fnv":"<hex>"}` where
//! `<hex>` is the FNV-64 of the rendered `<body>` text. Verification
//! re-renders the parsed body through the same writer — the parser
//! ([`kcb_util::json`]) is the exact inverse of the renderer, so any bit
//! flip that changes the record's meaning changes the re-rendered bytes
//! and fails the check. Replay stops at the first damaged record and
//! re-executes only that suffix, with one warning.
//!
//! The run **index** (`results/runs/index.jsonl`, same framing) gets one
//! manifest appended when a run starts (`outcome: "running"`) and one
//! when it ends (`"complete"` / `"failed"`), so a crashed run is visible
//! as a fold whose latest record still says `running`. `repro runs
//! [list|show|diff]` queries it.
//!
//! Fault injection: [`FaultPlan`] (from `KCB_FAULT=abort_after_job:N`, or
//! injected directly in tests as `panic_after_job:N`) kills the run at an
//! exact job boundary — after the Nth record of this run is journaled and
//! fsynced — which is how the resume path is proven in CI rather than
//! assumed.

use kcb_util::json::parse_value;
use serde_json::Value;
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Version of the journal / index record shapes.
pub const JOURNAL_VERSION: u64 = 1;

/// FNV-1a 64-bit hex digest — the journal's checksum primitive.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", kcb_util::fnv1a(bytes))
}

// ---------------------------------------------------------------------------
// Records and the line codec.
// ---------------------------------------------------------------------------

/// One job-completion record.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Position in this journal (0-based, monotonically increasing across
    /// resumes).
    pub seq: u64,
    /// Scheduler job label (`provider:…`, `cell:…`, `artifact:…`).
    pub label: String,
    /// `"par"` or `"driver"`.
    pub kind: String,
    /// FNV-64 hex digest of the job's durable output (the persisted
    /// artifact payload for assembly jobs; empty for warm-up jobs whose
    /// only output is an in-memory cache).
    pub digest: String,
    /// Wall-clock seconds inside the job closure.
    pub seconds: f64,
    /// Worker that executed the job (0 = driver thread).
    pub worker: u64,
    /// Input provenance entries, `name=content-key` (the config digest
    /// plus, per dependency, its content-addressed checkpoint key), so
    /// `repro runs diff` can say *which* inputs changed between two runs
    /// rather than only which outputs differ. Journals written before
    /// this field load with an empty list — the framing checksum covers
    /// whatever shape was actually written, so old records stay valid.
    pub inputs: Vec<String>,
}

impl JobRecord {
    fn body(&self) -> Value {
        let inputs =
            Value::Array(self.inputs.iter().map(|s| Value::String(s.clone())).collect());
        Value::Object(vec![
            ("v".to_string(), serde_json::json!(JOURNAL_VERSION)),
            ("seq".to_string(), serde_json::json!(self.seq)),
            ("label".to_string(), Value::String(self.label.clone())),
            ("kind".to_string(), Value::String(self.kind.clone())),
            ("digest".to_string(), Value::String(self.digest.clone())),
            ("seconds".to_string(), serde_json::json!(self.seconds)),
            ("worker".to_string(), serde_json::json!(self.worker)),
            ("inputs".to_string(), inputs),
        ])
    }

    fn from_body(v: &Value) -> Option<Self> {
        if v.get("v")?.as_u64()? != JOURNAL_VERSION {
            return None;
        }
        let inputs = match v.get("inputs") {
            None => Vec::new(),
            Some(arr) => arr
                .as_array()?
                .iter()
                .map(|s| s.as_str().map(str::to_string))
                .collect::<Option<Vec<_>>>()?,
        };
        Some(Self {
            seq: v.get("seq")?.as_u64()?,
            label: v.get("label")?.as_str()?.to_string(),
            kind: v.get("kind")?.as_str()?.to_string(),
            digest: v.get("digest")?.as_str()?.to_string(),
            seconds: v.get("seconds")?.as_f64()?,
            worker: v.get("worker")?.as_u64()?,
            inputs,
        })
    }
}

/// Frames `body` as one self-verifying journal line (without newline).
pub fn encode_line(body: &Value) -> String {
    let text = body.render_json(None);
    let fnv = fnv64_hex(text.as_bytes());
    format!("{{\"rec\":{text},\"fnv\":\"{fnv}\"}}")
}

/// Unframes and verifies one line: parses, re-renders the body through
/// the deterministic writer, and compares the FNV-64. Any parse failure
/// or checksum mismatch is a damaged record.
pub fn decode_line(line: &str) -> Result<Value, String> {
    let v = parse_value(line)?;
    let body = v.get("rec").ok_or("missing rec field")?;
    let fnv = v.get("fnv").and_then(Value::as_str).ok_or("missing fnv field")?;
    let text = body.render_json(None);
    if fnv64_hex(text.as_bytes()) != fnv {
        return Err("checksum mismatch".to_string());
    }
    Ok(body.clone())
}

/// Encodes a [`JobRecord`] as one journal line (without newline).
pub fn encode_record(rec: &JobRecord) -> String {
    encode_line(&rec.body())
}

/// Decodes and verifies one journal line.
pub fn decode_record(line: &str) -> Result<JobRecord, String> {
    let body = decode_line(line)?;
    JobRecord::from_body(&body).ok_or_else(|| "malformed record body".to_string())
}

// ---------------------------------------------------------------------------
// The per-run journal: layout, replay, writer.
// ---------------------------------------------------------------------------

/// Directory of one run's journal state: `<runs>/<config-digest>/`.
pub fn run_dir(runs_root: &Path, config_digest: &str) -> PathBuf {
    runs_root.join(config_digest)
}

/// Path of the journal file inside a run directory.
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join("journal.jsonl")
}

/// Path of a persisted artifact replay payload inside a run directory.
pub fn artifact_path(dir: &Path, id: &str) -> PathBuf {
    let slug: String = id
        .to_lowercase()
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    dir.join("artifacts").join(format!("{slug}.json"))
}

/// What replaying a journal found.
#[derive(Debug, Clone, Default)]
pub struct Replay {
    /// Every valid record, in sequence order.
    pub records: Vec<JobRecord>,
    /// One warning when a damaged suffix was dropped (torn final line
    /// after a crash, truncation, bit flips). Everything before the first
    /// damaged record is still trusted.
    pub warning: Option<String>,
}

impl Replay {
    /// Labels of all journaled (completed) jobs.
    pub fn completed(&self) -> HashSet<String> {
        self.records.iter().map(|r| r.label.clone()).collect()
    }

    /// The journaled output digest for a label, if any.
    pub fn digest_of(&self, label: &str) -> Option<&str> {
        self.records
            .iter()
            .rev()
            .find(|r| r.label == label)
            .map(|r| r.digest.as_str())
    }
}

/// Loads and verifies a journal file. A missing file is an empty replay.
/// Reading stops at the first damaged record: a crash can only tear the
/// tail, so everything after the first bad line is untrusted and the run
/// falls back to re-executing exactly that suffix.
pub fn load(path: &Path) -> Replay {
    let Ok(bytes) = std::fs::read(path) else { return Replay::default() };
    let mut out = Replay::default();
    let mut dropped = 0usize;
    let mut first_err = String::new();
    // Decode line by line from raw bytes — a bit flip can make a line
    // invalid UTF-8, which must damage *that record*, not the whole file.
    // A file not ending in '\n' has a torn final line; iterate complete
    // lines only and count the remainder as damage.
    let complete_len = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
    let mut lines = bytes[..complete_len].split_inclusive(|&b| b == b'\n');
    for chunk in &mut lines {
        let decoded = std::str::from_utf8(&chunk[..chunk.len() - 1])
            .map_err(|_| "invalid utf-8".to_string())
            .and_then(decode_record);
        match decoded {
            Ok(rec) => out.records.push(rec),
            Err(e) => {
                dropped += 1;
                first_err = e;
                break;
            }
        }
    }
    dropped += lines.count();
    if complete_len < bytes.len() && first_err.is_empty() {
        dropped += 1;
        first_err = "torn final line (no newline)".to_string();
    }
    if dropped > 0 {
        out.warning = Some(format!(
            "journal {}: dropped {} damaged record(s) ({}); re-executing that suffix",
            path.display(),
            dropped,
            first_err
        ));
    }
    kcb_obs::counter("journal.records_loaded", out.records.len() as u64);
    out
}

/// Appends checksummed, fsync'd records to a journal file.
pub struct Writer {
    file: Mutex<std::fs::File>,
    path: PathBuf,
    next_seq: AtomicU64,
    appended: AtomicU64,
}

impl Writer {
    /// Opens (creating directories as needed) in append mode, continuing
    /// sequence numbers after `existing` replayed records.
    pub fn open(path: &Path, existing: u64) -> std::io::Result<Self> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let file = std::fs::OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self {
            file: Mutex::new(file),
            path: path.to_path_buf(),
            next_seq: AtomicU64::new(existing),
            appended: AtomicU64::new(0),
        })
    }

    /// Appends one completion record and fsyncs the line so a crash
    /// immediately after cannot lose it. Returns the records appended by
    /// this writer so far (the fault-injection counter). Write errors
    /// warn and are swallowed: journaling is a durability aid, never a
    /// reason to fail the run itself.
    pub fn append(
        &self,
        label: &str,
        kind: &str,
        digest: &str,
        seconds: f64,
        worker: usize,
        inputs: &[String],
    ) -> u64 {
        let rec = JobRecord {
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            label: label.to_string(),
            kind: kind.to_string(),
            digest: digest.to_string(),
            seconds,
            worker: worker as u64,
            inputs: inputs.to_vec(),
        };
        let mut line = encode_record(&rec);
        line.push('\n');
        {
            let mut f = self.file.lock().expect("journal file lock");
            let wrote = f
                .write_all(line.as_bytes())
                .and_then(|()| f.flush())
                .and_then(|()| f.sync_data());
            if let Err(e) = wrote {
                eprintln!("warning: journal append failed ({}): {e}", self.path.display());
            }
        }
        kcb_obs::counter("journal.appends", 1);
        self.appended.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Records appended by this writer (this run, excluding replays).
    pub fn appended(&self) -> u64 {
        self.appended.load(Ordering::Relaxed)
    }
}

// ---------------------------------------------------------------------------
// Fault injection.
// ---------------------------------------------------------------------------

/// How an injected fault kills the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// `std::process::abort()` — the real crash, used by CI through
    /// `KCB_FAULT`. No destructors, no flushing beyond what the journal
    /// already fsynced.
    Abort,
    /// `panic!` — the in-process stand-in for tests, which catch the
    /// unwind and then exercise the same resume path.
    Panic,
}

/// Kills the run at an exact job boundary: after `after_jobs` completion
/// records have been appended (and fsynced) by this run's writer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Records this run may append before the fault fires.
    pub after_jobs: u64,
    /// Abort (CI) or panic (tests).
    pub action: FaultAction,
}

impl FaultPlan {
    /// Parses `KCB_FAULT` (`abort_after_job:N` / `panic_after_job:N`).
    /// Unset means no fault; a malformed value is rejected loudly rather
    /// than silently ignored — a fault plan that does not fire would make
    /// a CI crash test pass vacuously.
    pub fn from_env() -> Result<Option<Self>, String> {
        match std::env::var("KCB_FAULT") {
            Err(_) => Ok(None),
            Ok(spec) => Self::parse(&spec).map(Some),
        }
    }

    /// Parses a fault spec string.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (action, n) = spec
            .split_once(':')
            .ok_or_else(|| format!("bad KCB_FAULT `{spec}` (want kind_after_job:N)"))?;
        let action = match action {
            "abort_after_job" => FaultAction::Abort,
            "panic_after_job" => FaultAction::Panic,
            other => return Err(format!("bad KCB_FAULT kind `{other}`")),
        };
        let after_jobs: u64 =
            n.parse().map_err(|_| format!("bad KCB_FAULT job count `{n}`"))?;
        if after_jobs == 0 {
            return Err("KCB_FAULT job count must be at least 1".to_string());
        }
        Ok(Self { after_jobs, action })
    }

    /// Fires the fault if `appended_this_run` has reached the boundary.
    pub fn check(&self, appended_this_run: u64) {
        if appended_this_run < self.after_jobs {
            return;
        }
        match self.action {
            FaultAction::Abort => {
                eprintln!("# KCB_FAULT: aborting after {} journaled jobs", appended_this_run);
                std::process::abort();
            }
            FaultAction::Panic => {
                panic!("KCB_FAULT: injected fault after {appended_this_run} journaled jobs")
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The run index and its manifests.
// ---------------------------------------------------------------------------

/// One run manifest, as appended to `results/runs/index.jsonl`. A run
/// appends one with `outcome: "running"` at start and one terminal record
/// (`"complete"` / `"failed"`) at exit; folding by `run_id` and keeping
/// the last therefore shows crashed runs as still-`running`.
#[derive(Debug, Clone, PartialEq)]
pub struct RunManifest {
    /// Unique id: `<config-digest>-<start-unix-millis>`.
    pub run_id: String,
    /// FNV-64 hex digest of the full lab configuration.
    pub config_digest: String,
    /// Master seed.
    pub seed: u64,
    /// Ontology scale.
    pub scale: f64,
    /// Scheduler worker threads.
    pub threads: u64,
    /// Tiny `--fast` configuration?
    pub fast: bool,
    /// Requested artifact ids, in request order.
    pub ids: Vec<String>,
    /// Unix milliseconds when the run started.
    pub started_unix_ms: u64,
    /// Unix milliseconds when this record was written.
    pub updated_unix_ms: u64,
    /// `"running"`, `"complete"` or `"failed"`.
    pub outcome: String,
    /// Scheduler jobs executed this run (0 in the start record).
    pub jobs_run: u64,
    /// Jobs satisfied from the journal instead of executed.
    pub jobs_replayed: u64,
    /// Whether this run resumed an interrupted journal.
    pub resume: bool,
    /// End-to-end wall seconds (0 in the start record).
    pub wall_s: f64,
    /// `(artifact id, FNV-64 hex of its persisted payload)` per assembled
    /// artifact, in request order.
    pub artifacts: Vec<(String, String)>,
}

impl RunManifest {
    /// Structural JSON body (order fixed so the framing checksum is
    /// deterministic).
    pub fn to_json(&self) -> Value {
        let ids = Value::Array(self.ids.iter().map(|s| Value::String(s.clone())).collect());
        let artifacts = Value::Array(
            self.artifacts
                .iter()
                .map(|(id, fnv)| {
                    Value::Object(vec![
                        ("id".to_string(), Value::String(id.clone())),
                        ("fnv".to_string(), Value::String(fnv.clone())),
                    ])
                })
                .collect(),
        );
        Value::Object(vec![
            ("v".to_string(), serde_json::json!(JOURNAL_VERSION)),
            ("run_id".to_string(), Value::String(self.run_id.clone())),
            ("config_digest".to_string(), Value::String(self.config_digest.clone())),
            ("seed".to_string(), serde_json::json!(self.seed)),
            ("scale".to_string(), serde_json::json!(self.scale)),
            ("threads".to_string(), serde_json::json!(self.threads)),
            ("fast".to_string(), serde_json::json!(self.fast)),
            ("ids".to_string(), ids),
            ("started_unix_ms".to_string(), serde_json::json!(self.started_unix_ms)),
            ("updated_unix_ms".to_string(), serde_json::json!(self.updated_unix_ms)),
            ("outcome".to_string(), Value::String(self.outcome.clone())),
            ("jobs_run".to_string(), serde_json::json!(self.jobs_run)),
            ("jobs_replayed".to_string(), serde_json::json!(self.jobs_replayed)),
            ("resume".to_string(), serde_json::json!(self.resume)),
            ("wall_s".to_string(), serde_json::json!(self.wall_s)),
            ("artifacts".to_string(), artifacts),
        ])
    }

    /// Inverse of [`RunManifest::to_json`].
    pub fn from_json(v: &Value) -> Option<Self> {
        if v.get("v")?.as_u64()? != JOURNAL_VERSION {
            return None;
        }
        let ids = v
            .get("ids")?
            .as_array()?
            .iter()
            .map(|s| s.as_str().map(str::to_string))
            .collect::<Option<Vec<_>>>()?;
        let artifacts = v
            .get("artifacts")?
            .as_array()?
            .iter()
            .map(|a| {
                Some((
                    a.get("id")?.as_str()?.to_string(),
                    a.get("fnv")?.as_str()?.to_string(),
                ))
            })
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            run_id: v.get("run_id")?.as_str()?.to_string(),
            config_digest: v.get("config_digest")?.as_str()?.to_string(),
            seed: v.get("seed")?.as_u64()?,
            scale: v.get("scale")?.as_f64()?,
            threads: v.get("threads")?.as_u64()?,
            fast: v.get("fast")?.as_bool()?,
            ids,
            started_unix_ms: v.get("started_unix_ms")?.as_u64()?,
            updated_unix_ms: v.get("updated_unix_ms")?.as_u64()?,
            outcome: v.get("outcome")?.as_str()?.to_string(),
            jobs_run: v.get("jobs_run")?.as_u64()?,
            jobs_replayed: v.get("jobs_replayed")?.as_u64()?,
            resume: v.get("resume")?.as_bool()?,
            wall_s: v.get("wall_s")?.as_f64()?,
            artifacts,
        })
    }
}

/// Path of the run index under a runs root.
pub fn index_path(runs_root: &Path) -> PathBuf {
    runs_root.join("index.jsonl")
}

/// Appends one manifest record to the index (same framing as the
/// journal). Errors warn and are swallowed.
pub fn index_append(runs_root: &Path, m: &RunManifest) {
    let path = index_path(runs_root);
    let append = || -> std::io::Result<()> {
        std::fs::create_dir_all(runs_root)?;
        let mut f = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        let mut line = encode_line(&m.to_json());
        line.push('\n');
        f.write_all(line.as_bytes())?;
        f.flush()?;
        f.sync_data()
    };
    if let Err(e) = append() {
        eprintln!("warning: run-index append failed ({}): {e}", path.display());
    }
    kcb_obs::counter("journal.index_appends", 1);
}

/// Loads every valid manifest from the index, in file order, silently
/// skipping damaged lines (the index is advisory; the journal is the
/// durable record).
pub fn index_load(runs_root: &Path) -> Vec<RunManifest> {
    let Ok(text) = std::fs::read_to_string(index_path(runs_root)) else { return Vec::new() };
    text.lines()
        .filter_map(|l| decode_line(l).ok())
        .filter_map(|b| RunManifest::from_json(&b))
        .collect()
}

/// Folds index records by `run_id`, keeping the latest per run, newest
/// first — the `repro runs list` view.
pub fn index_fold(records: Vec<RunManifest>) -> Vec<RunManifest> {
    let mut folded: Vec<RunManifest> = Vec::new();
    for m in records {
        if let Some(slot) = folded.iter_mut().find(|f| f.run_id == m.run_id) {
            *slot = m;
        } else {
            folded.push(m);
        }
    }
    folded.sort_by_key(|m| std::cmp::Reverse(m.started_unix_ms));
    folded
}

/// Field-by-field diff of two manifests: `(field, a, b)` rows for every
/// field that differs, including per-artifact checksum mismatches.
pub fn diff_manifests(a: &RunManifest, b: &RunManifest) -> Vec<(String, String, String)> {
    let mut out = Vec::new();
    let mut field = |name: &str, va: String, vb: String| {
        if va != vb {
            out.push((name.to_string(), va, vb));
        }
    };
    field("config_digest", a.config_digest.clone(), b.config_digest.clone());
    field("seed", a.seed.to_string(), b.seed.to_string());
    field("scale", a.scale.to_string(), b.scale.to_string());
    field("threads", a.threads.to_string(), b.threads.to_string());
    field("fast", a.fast.to_string(), b.fast.to_string());
    field("ids", a.ids.join(" "), b.ids.join(" "));
    field("outcome", a.outcome.clone(), b.outcome.clone());
    field("jobs_run", a.jobs_run.to_string(), b.jobs_run.to_string());
    field("jobs_replayed", a.jobs_replayed.to_string(), b.jobs_replayed.to_string());
    field("resume", a.resume.to_string(), b.resume.to_string());
    let ids: Vec<&str> = a
        .artifacts
        .iter()
        .map(|(id, _)| id.as_str())
        .chain(b.artifacts.iter().map(|(id, _)| id.as_str()))
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    for id in ids {
        let find = |m: &RunManifest| {
            m.artifacts
                .iter()
                .find(|(i, _)| i == id)
                .map(|(_, f)| f.clone())
                .unwrap_or_else(|| "absent".to_string())
        };
        let (fa, fb) = (find(a), find(b));
        if fa != fb {
            out.push((format!("artifact:{id}"), fa, fb));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(seq: u64, label: &str) -> JobRecord {
        JobRecord {
            seq,
            label: label.to_string(),
            kind: "par".to_string(),
            digest: String::new(),
            seconds: 0.125,
            worker: 1,
            inputs: Vec::new(),
        }
    }

    #[test]
    fn records_round_trip_the_line_codec() {
        let r = JobRecord {
            seq: 7,
            label: "artifact:fig3".to_string(),
            digest: "00ff00ff00ff00ff".to_string(),
            kind: "driver".to_string(),
            seconds: 1.5,
            worker: 0,
            inputs: vec!["cfg=aa".to_string(), "provider:bert=bb".to_string()],
        };
        let line = encode_record(&r);
        assert_eq!(decode_record(&line).unwrap(), r);
        kcb_obs::json::validate(&line).unwrap();
    }

    #[test]
    fn pre_provenance_records_load_with_empty_inputs() {
        // A record body as written before the `inputs` field existed: the
        // framing checksum covers the rendered body, not a fixed schema,
        // so old journals must keep loading (with no provenance).
        let mut old = rec(2, "cell:lstm|glove");
        old.inputs = vec!["x=y".to_string()];
        let body = old.body();
        let Value::Object(fields) = body else { panic!("object body") };
        let trimmed =
            Value::Object(fields.into_iter().filter(|(k, _)| k != "inputs").collect());
        let line = encode_line(&trimmed);
        let back = decode_record(&line).unwrap();
        assert_eq!(back.label, "cell:lstm|glove");
        assert!(back.inputs.is_empty());
    }

    #[test]
    fn any_bit_flip_is_detected() {
        let line = encode_record(&rec(3, "cell:rf|1|0.5|glove|naive"));
        let bytes = line.as_bytes();
        for i in 0..bytes.len() {
            let mut flipped = bytes.to_vec();
            flipped[i] ^= 0x01;
            let Ok(s) = std::str::from_utf8(&flipped) else { continue };
            if let Ok(r2) = decode_record(s) {
                // The only undetectable flips are those the canonical
                // re-render absorbs (e.g. whitespace) — the decoded record
                // must then be semantically identical.
                assert_eq!(r2, rec(3, "cell:rf|1|0.5|glove|naive"), "flip at byte {i}");
            }
        }
    }

    #[test]
    fn torn_tail_is_dropped_with_one_warning() {
        let dir = std::env::temp_dir().join(format!("kcb-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.jsonl");
        let mut text = String::new();
        for i in 0..4 {
            text.push_str(&encode_record(&rec(i, &format!("cell:{i}"))));
            text.push('\n');
        }
        // Torn final line: a fifth record cut mid-way, no newline.
        let torn = encode_record(&rec(4, "cell:4"));
        text.push_str(&torn[..torn.len() / 2]);
        std::fs::write(&path, &text).unwrap();
        let replay = load(&path);
        assert_eq!(replay.records.len(), 4);
        assert!(replay.warning.as_deref().unwrap().contains("1 damaged"), "{replay:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corruption_stops_replay_at_the_damaged_suffix() {
        let dir = std::env::temp_dir().join(format!("kcb-journal-c-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("corrupt.jsonl");
        let mut lines: Vec<String> =
            (0..6).map(|i| encode_record(&rec(i, &format!("cell:{i}")))).collect();
        // Flip a digit inside record 4's checksum field.
        lines[4] = lines[4].replace("\"fnv\":\"", "\"fnv\":\"x");
        std::fs::write(&path, lines.join("\n") + "\n").unwrap();
        let replay = load(&path);
        // Records 0..4 survive; 4 and 5 are the re-executed suffix.
        assert_eq!(replay.records.len(), 4);
        assert!(replay.warning.as_deref().unwrap().contains("2 damaged"), "{replay:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn writer_appends_are_loadable_and_sequenced() {
        let dir = std::env::temp_dir().join(format!("kcb-journal-w-{}", std::process::id()));
        let path = dir.join("w.jsonl");
        std::fs::remove_file(&path).ok();
        let w = Writer::open(&path, 0).unwrap();
        let inputs = vec!["cfg=00".to_string()];
        assert_eq!(w.append("provider:ontology", "par", "", 0.5, 1, &inputs), 1);
        assert_eq!(w.append("artifact:table2", "driver", "abcd", 0.25, 0, &[]), 2);
        assert_eq!(w.appended(), 2);
        let replay = load(&path);
        assert!(replay.warning.is_none());
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.records[1].seq, 1);
        assert_eq!(replay.records[0].inputs, inputs);
        assert_eq!(replay.digest_of("artifact:table2"), Some("abcd"));
        // A resumed writer continues the sequence.
        let w2 = Writer::open(&path, replay.records.len() as u64).unwrap();
        w2.append("artifact:fig3", "driver", "ef", 0.1, 0, &[]);
        let replay = load(&path);
        assert_eq!(replay.records[2].seq, 2);
        assert_eq!(replay.completed().len(), 3);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fault_plan_parses_and_fires_as_panic() {
        assert_eq!(
            FaultPlan::parse("abort_after_job:7").unwrap(),
            FaultPlan { after_jobs: 7, action: FaultAction::Abort }
        );
        for bad in ["", "abort_after_job", "abort_after_job:0", "abort_after_job:x", "zap:3"] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted {bad:?}");
        }
        let plan = FaultPlan::parse("panic_after_job:2").unwrap();
        plan.check(1); // below the boundary: no fire
        let err = std::panic::catch_unwind(|| plan.check(2)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
    }

    #[test]
    fn manifests_round_trip_and_fold() {
        let m = RunManifest {
            run_id: "deadbeef-100".to_string(),
            config_digest: "deadbeef".to_string(),
            seed: 42,
            scale: 0.03,
            threads: 4,
            fast: true,
            ids: vec!["table2".to_string(), "fig3".to_string()],
            started_unix_ms: 100,
            updated_unix_ms: 100,
            outcome: "running".to_string(),
            jobs_run: 0,
            jobs_replayed: 0,
            resume: false,
            wall_s: 0.0,
            artifacts: Vec::new(),
        };
        let line = encode_line(&m.to_json());
        let back = RunManifest::from_json(&decode_line(&line).unwrap()).unwrap();
        assert_eq!(back, m);

        let dir = std::env::temp_dir().join(format!("kcb-runs-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        index_append(&dir, &m);
        let mut done = m.clone();
        done.outcome = "complete".to_string();
        done.jobs_run = 9;
        done.artifacts = vec![("table2".to_string(), "aa".to_string())];
        index_append(&dir, &done);
        let mut other = m.clone();
        other.run_id = "deadbeef-200".to_string();
        other.started_unix_ms = 200;
        index_append(&dir, &other);

        let folded = index_fold(index_load(&dir));
        assert_eq!(folded.len(), 2);
        // Newest run first; the older one folded to its terminal record.
        assert_eq!(folded[0].run_id, "deadbeef-200");
        assert_eq!(folded[1].outcome, "complete");
        assert_eq!(folded[1].jobs_run, 9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn manifest_diff_names_differing_fields() {
        let mk = |seed: u64, fnv: &str| RunManifest {
            run_id: format!("r{seed}"),
            config_digest: "d".to_string(),
            seed,
            scale: 0.03,
            threads: 1,
            fast: false,
            ids: vec!["table2".to_string()],
            started_unix_ms: 0,
            updated_unix_ms: 0,
            outcome: "complete".to_string(),
            jobs_run: 3,
            jobs_replayed: 0,
            resume: false,
            wall_s: 1.0,
            artifacts: vec![("table2".to_string(), fnv.to_string())],
        };
        assert!(diff_manifests(&mk(1, "aa"), &mk(1, "aa")).is_empty());
        let d = diff_manifests(&mk(1, "aa"), &mk(2, "bb"));
        let fields: Vec<&str> = d.iter().map(|(f, _, _)| f.as_str()).collect();
        assert!(fields.contains(&"seed"), "{fields:?}");
        assert!(fields.contains(&"artifact:table2"), "{fields:?}");
        assert!(!fields.contains(&"scale"), "{fields:?}");
    }
}
