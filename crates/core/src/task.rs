//! The three knowledge-curation tasks and their negative samplers (§2.2,
//! §3.2).
//!
//! All three share the positive set (the ontology's task-relation triples)
//! and differ in how negatives are corrupted:
//!
//! * **Task 1** — random negatives: `(s, o, l)` pairs not asserted in the
//!   graph;
//! * **Task 2** — wrong-direction negatives: flipped positives, excluding
//!   symmetric relations whose flip is still true;
//! * **Task 3** — wrong-object negatives: the object is replaced by one of
//!   its `is_a` siblings (the hardest task).

use kcb_ontology::{EntityId, Ontology, Relation, Triple};
use kcb_util::Rng;
use serde::Serialize;

/// Which curation task.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize)]
pub enum TaskKind {
    /// True vs random false triples.
    RandomNegatives,
    /// True vs wrong-direction (flipped) triples.
    FlippedNegatives,
    /// True vs wrong-object (sibling-replaced) triples.
    SiblingNegatives,
}

impl TaskKind {
    /// All tasks in paper order.
    pub const ALL: [TaskKind; 3] =
        [TaskKind::RandomNegatives, TaskKind::FlippedNegatives, TaskKind::SiblingNegatives];

    /// Paper task number (1–3).
    pub fn number(self) -> usize {
        match self {
            TaskKind::RandomNegatives => 1,
            TaskKind::FlippedNegatives => 2,
            TaskKind::SiblingNegatives => 3,
        }
    }

    /// Human-readable description.
    pub fn describe(self) -> &'static str {
        match self {
            TaskKind::RandomNegatives => "true vs random false triples",
            TaskKind::FlippedNegatives => "true vs wrong-direction triples",
            TaskKind::SiblingNegatives => "true vs wrong-object triples",
        }
    }
}

/// One labelled example.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LabeledTriple {
    /// The triple.
    pub triple: Triple,
    /// True = correct knowledge, false = corrupted.
    pub label: bool,
}

/// A full task dataset: positives plus the task's negatives, interleaved
/// deterministically.
#[derive(Debug, Clone)]
pub struct TaskDataset {
    /// The task.
    pub task: TaskKind,
    /// All labelled examples.
    pub examples: Vec<LabeledTriple>,
}

impl TaskDataset {
    /// Builds the dataset for a task over an ontology (§3.2's data
    /// preprocessing). Deterministic in `seed`.
    ///
    /// ```
    /// use kcb_core::task::{TaskDataset, TaskKind};
    /// use kcb_ontology::{SyntheticConfig, SyntheticGenerator};
    /// let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.004, seed: 1 })
    ///     .unwrap()
    ///     .generate();
    /// let d = TaskDataset::generate(&o, TaskKind::FlippedNegatives, 1);
    /// // Flips that accidentally form true triples are dropped, so the
    /// // classes are near- but not exactly balanced.
    /// assert!(d.n_positive().abs_diff(d.n_negative()) < d.n_positive() / 50 + 5);
    /// assert!(d.examples.iter().all(|e| !e.triple.relation.is_symmetric()));
    /// ```
    pub fn generate(o: &Ontology, task: TaskKind, seed: u64) -> Self {
        let positives = positive_triples(o, task);
        let mut rng = Rng::seed_stream(seed, 0x7a50 + task.number() as u64);
        let negatives = match task {
            TaskKind::RandomNegatives => random_negatives(o, &positives, &mut rng),
            TaskKind::FlippedNegatives => flipped_negatives(o, &positives),
            TaskKind::SiblingNegatives => sibling_negatives(o, &positives, &mut rng),
        };
        let mut examples: Vec<LabeledTriple> = positives
            .iter()
            .map(|&t| LabeledTriple { triple: t, label: true })
            .chain(negatives.iter().map(|&t| LabeledTriple { triple: t, label: false }))
            .collect();
        // Deterministic shuffle so later splits are stratified draws.
        rng.shuffle(&mut examples);
        Self { task, examples }
    }

    /// Number of positive examples.
    pub fn n_positive(&self) -> usize {
        self.examples.iter().filter(|e| e.label).count()
    }

    /// Number of negative examples.
    pub fn n_negative(&self) -> usize {
        self.examples.len() - self.n_positive()
    }

    /// Total size.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }
}

/// The task's positive triples.
///
/// Task 1 and 3 use every task-set relation (everything except
/// `is conjugate acid of`, §2.1); task 2 additionally drops
/// `is tautomer of` and `is enantiomer of` because flipping a symmetric
/// relation yields another true triple (§3.2 names the tautomer case; our
/// generator also asserts enantiomer pairs both ways, so the same argument
/// removes them).
pub fn positive_triples(o: &Ontology, task: TaskKind) -> Vec<Triple> {
    o.triples()
        .iter()
        .copied()
        .filter(|t| {
            if t.relation == Relation::IsConjugateAcidOf {
                return false;
            }
            if task == TaskKind::FlippedNegatives && t.relation.is_symmetric() {
                return false;
            }
            true
        })
        .collect()
}

/// Task 1: for each positive, a uniformly random `(s, o)` pair with a
/// relation drawn from the positive relation mix, not asserted in the
/// graph.
fn random_negatives(o: &Ontology, positives: &[Triple], rng: &mut Rng) -> Vec<Triple> {
    let n_entities = o.n_entities();
    let mut seen: std::collections::HashSet<(u32, u8, u32)> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(positives.len());
    let mut guard = 0usize;
    while out.len() < positives.len() && guard < positives.len() * 50 {
        guard += 1;
        // Relation from the empirical positive mix.
        let l = positives[rng.below(positives.len())].relation;
        let t = Triple::new(
            EntityId(rng.below(n_entities) as u32),
            l,
            EntityId(rng.below(n_entities) as u32),
        );
        if t.subject == t.object || o.holds(t) || !seen.insert(t.key()) {
            continue;
        }
        out.push(t);
    }
    out
}

/// Task 2: flipped positives that are not themselves true.
fn flipped_negatives(o: &Ontology, positives: &[Triple]) -> Vec<Triple> {
    positives
        .iter()
        .map(|t| t.flipped())
        .filter(|f| !o.contains(*f))
        .collect()
}

/// Task 3: object replaced by a random sibling such that the result is not
/// a true triple. Positives without usable siblings contribute no
/// negative (§3.2).
fn sibling_negatives(o: &Ontology, positives: &[Triple], rng: &mut Rng) -> Vec<Triple> {
    let mut seen: std::collections::HashSet<(u32, u8, u32)> = std::collections::HashSet::new();
    let mut out = Vec::with_capacity(positives.len());
    for t in positives {
        let sibs = o.siblings(t.object);
        if sibs.is_empty() {
            continue;
        }
        // Try a few random siblings before giving up on this positive.
        let mut found = None;
        for _ in 0..6 {
            let o2 = sibs[rng.below(sibs.len())];
            let cand = t.with_object(o2);
            if cand.subject != cand.object && !o.holds(cand) && !seen.contains(&cand.key()) {
                found = Some(cand);
                break;
            }
        }
        if let Some(neg) = found {
            seen.insert(neg.key());
            out.push(neg);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn ontology() -> Ontology {
        SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 21 })
            .unwrap()
            .generate()
    }

    #[test]
    fn task1_negatives_are_absent_from_graph_and_balanced() {
        let o = ontology();
        let d = TaskDataset::generate(&o, TaskKind::RandomNegatives, 1);
        assert_eq!(d.n_positive(), d.n_negative());
        for e in &d.examples {
            if e.label {
                assert!(o.contains(e.triple));
            } else {
                assert!(!o.holds(e.triple), "negative is true: {}", o.render(e.triple));
            }
        }
    }

    #[test]
    fn task2_negatives_are_exact_flips() {
        let o = ontology();
        let d = TaskDataset::generate(&o, TaskKind::FlippedNegatives, 1);
        for e in &d.examples {
            if !e.label {
                assert!(o.contains(e.triple.flipped()), "flip of negative must be positive");
                assert!(!o.contains(e.triple));
            }
        }
        // Symmetric relations excluded from positives.
        assert!(d
            .examples
            .iter()
            .all(|e| !e.triple.relation.is_symmetric()));
    }

    #[test]
    fn task3_negatives_share_a_parent_with_the_true_object() {
        let o = ontology();
        let d = TaskDataset::generate(&o, TaskKind::SiblingNegatives, 1);
        let mut checked = 0;
        for e in d.examples.iter().filter(|e| !e.label).take(300) {
            assert!(!o.holds(e.triple));
            // The corrupted object must be a sibling of SOME true object of
            // the same (subject, relation): reconstruct by checking that
            // a true triple (s, l, o1) exists with p(o1) ∩ p(o2) ≠ ∅.
            let parents2: std::collections::HashSet<_> =
                o.parents(e.triple.object).iter().copied().collect();
            let has_true_sibling_source = o
                .triples()
                .iter()
                .filter(|t| t.subject == e.triple.subject && t.relation == e.triple.relation)
                .any(|t| o.parents(t.object).iter().any(|p| parents2.contains(p)));
            assert!(has_true_sibling_source, "negative {} lacks a sibling source", o.render(e.triple));
            checked += 1;
        }
        assert!(checked > 50, "too few negatives to trust the test");
    }

    #[test]
    fn no_conjugate_acid_positives_anywhere() {
        let o = ontology();
        for task in TaskKind::ALL {
            let d = TaskDataset::generate(&o, task, 3);
            assert!(d
                .examples
                .iter()
                .all(|e| !(e.label && e.triple.relation == Relation::IsConjugateAcidOf)));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let o = ontology();
        let a = TaskDataset::generate(&o, TaskKind::SiblingNegatives, 9);
        let b = TaskDataset::generate(&o, TaskKind::SiblingNegatives, 9);
        assert_eq!(a.examples, b.examples);
        let c = TaskDataset::generate(&o, TaskKind::SiblingNegatives, 10);
        assert_ne!(a.examples, c.examples);
    }

    #[test]
    fn dataset_sizes_follow_paper_shape() {
        // Task 2 has fewer positives than task 1 (symmetric relations
        // dropped); task 3 negatives at most equal positives.
        let o = ontology();
        let d1 = TaskDataset::generate(&o, TaskKind::RandomNegatives, 4);
        let d2 = TaskDataset::generate(&o, TaskKind::FlippedNegatives, 4);
        let d3 = TaskDataset::generate(&o, TaskKind::SiblingNegatives, 4);
        assert!(d2.n_positive() < d1.n_positive());
        assert!(d3.n_negative() <= d3.n_positive());
        assert!(d3.n_negative() > d3.n_positive() / 2, "task 3 should find most siblings");
    }

    #[test]
    fn task_metadata() {
        assert_eq!(TaskKind::RandomNegatives.number(), 1);
        assert_eq!(TaskKind::ALL.len(), 3);
        for t in TaskKind::ALL {
            assert!(!t.describe().is_empty());
        }
    }
}
