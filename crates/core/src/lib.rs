//! The knowledge-curation benchmark (the paper's contribution).
//!
//! Everything above the substrates lives here: the three curation tasks
//! and their negative samplers ([`task`], §2.2), dataset splits and the
//! five data-availability scenarios ([`dataset`], §2.8 and §3.2), the
//! Algorithm 1 triple-vectorisation ([`compose`]) and the two
//! hypothesis-driven adaptations including Algorithm 2 ([`adapt`], §2.7),
//! the three NLP-paradigm pipelines ([`paradigm`]), the shared experiment
//! environment that builds and caches ontology / corpora / embeddings /
//! language models at a chosen scale ([`lab`]), and the per-table /
//! per-figure experiment runners with their report writers ([`experiment`],
//! [`report`]).

pub mod adapt;
pub mod ckpt;
pub mod compose;
pub mod dataset;
pub mod experiment;
pub mod journal;
pub mod lab;
pub mod paradigm;
pub mod report;
pub mod sched;
pub mod snapshot;
pub mod task;

pub use dataset::{Scenario, Split, SCENARIOS};
pub use task::{LabeledTriple, TaskDataset, TaskKind};
