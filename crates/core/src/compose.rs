//! Triple vectorisation (Algorithm 1, §2.6).
//!
//! Triples become feature vectors in two shapes:
//!
//! * **averaged-concat** (non-sequential learners like random forest):
//!   each component (subject / relation / object) is tokenized, filtered by
//!   the active [`Adaptation`], its token vectors averaged, and the three
//!   component vectors concatenated;
//! * **sequence** (RNN learners): token vectors in order with a separator
//!   vector between components.
//!
//! Component encoders are pluggable: token-averaging over any
//! [`EmbeddingModel`], or contextual `[CLS]` encoding through the mini-BERT
//! (the paper's PubmedBERT-embeddings variant).

use crate::adapt::Adaptation;
use crate::task::LabeledTriple;
use kcb_embed::{embed_or_random, EmbeddingModel};
use kcb_lm::MiniBert;
use kcb_ml::linalg::Matrix;
use kcb_ontology::{Ontology, Triple};
use kcb_text::{ChemTokenizer, WordPiece};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::Arc;

/// Encodes one triple component (an entity name or relation phrase) into a
/// fixed-width vector.
pub trait ComponentEncoder {
    /// Vector width per component.
    fn dim(&self) -> usize;
    /// Encoder display name.
    fn name(&self) -> String;
    /// Writes the component representation into `out`.
    fn encode_component(&self, text: &str, out: &mut [f32]);
}

/// Token-averaging encoder over a word-embedding model, with the active
/// adaptation applied after tokenization (Algorithm 1 + §2.7).
pub struct TokenAvgEncoder<'a> {
    model: &'a dyn EmbeddingModel,
    adaptation: Adaptation,
    tk: ChemTokenizer,
    cache: RefCell<HashMap<String, Vec<f32>>>,
}

impl<'a> TokenAvgEncoder<'a> {
    /// Creates an encoder.
    pub fn new(model: &'a dyn EmbeddingModel, adaptation: Adaptation) -> Self {
        Self { model, adaptation, tk: ChemTokenizer::new(), cache: RefCell::new(HashMap::new()) }
    }

    /// The adaptation in force.
    pub fn adaptation(&self) -> &Adaptation {
        &self.adaptation
    }

    fn token_vector(&self, token: &str, out: &mut [f32]) {
        let mut cache = self.cache.borrow_mut();
        if let Some(v) = cache.get(token) {
            out.copy_from_slice(v);
            return;
        }
        embed_or_random(self.model, token, out);
        cache.insert(token.to_string(), out.to_vec());
    }
}

impl ComponentEncoder for TokenAvgEncoder<'_> {
    fn dim(&self) -> usize {
        self.model.dim()
    }

    fn name(&self) -> String {
        format!("{} ({})", self.model.name(), self.adaptation.name())
    }

    fn encode_component(&self, text: &str, out: &mut [f32]) {
        let tokens = self.tk.tokenize(text);
        let kept = self.adaptation.apply(&tokens);
        out.fill(0.0);
        if kept.is_empty() {
            return;
        }
        let mut buf = vec![0.0f32; out.len()];
        for t in &kept {
            self.token_vector(t, &mut buf);
            kcb_ml::linalg::axpy(1.0, &buf, out);
        }
        let inv = 1.0 / kept.len() as f32;
        for v in out.iter_mut() {
            *v *= inv;
        }
    }
}

/// Contextual `[CLS]` encoder through the mini-BERT (§2.3: "summed up the
/// last 4 hidden layers of the special token [CLS] for each component").
pub struct BertClsEncoder<'a> {
    bert: &'a MiniBert,
    wordpiece: &'a WordPiece,
    tk: ChemTokenizer,
    cache: RefCell<HashMap<String, Vec<f32>>>,
}

impl<'a> BertClsEncoder<'a> {
    /// Creates an encoder.
    pub fn new(bert: &'a MiniBert, wordpiece: &'a WordPiece) -> Self {
        Self { bert, wordpiece, tk: ChemTokenizer::new(), cache: RefCell::new(HashMap::new()) }
    }
}

impl ComponentEncoder for BertClsEncoder<'_> {
    fn dim(&self) -> usize {
        self.bert.config().arch.d_model
    }

    fn name(&self) -> String {
        "pubmedbert-mini embeddings".to_string()
    }

    fn encode_component(&self, text: &str, out: &mut [f32]) {
        if let Some(v) = self.cache.borrow().get(text) {
            out.copy_from_slice(v);
            return;
        }
        let words = self.tk.tokenize(text);
        let mut ids = vec![kcb_text::wordpiece::special::CLS];
        ids.extend(self.wordpiece.encode_words(words.iter().map(String::as_str)));
        let v = self.bert.encode(&ids);
        out.copy_from_slice(&v);
        self.cache.borrow_mut().insert(text.to_string(), v);
    }
}

/// Averaged-concat feature vector of a triple: `[subject | relation |
/// object]`, 3 × `enc.dim()` wide.
pub fn triple_vector(o: &Ontology, t: Triple, enc: &dyn ComponentEncoder) -> Vec<f32> {
    let d = enc.dim();
    let mut out = vec![0.0f32; 3 * d];
    enc.encode_component(o.name(t.subject), &mut out[..d]);
    enc.encode_component(t.relation.phrase(), &mut out[d..2 * d]);
    enc.encode_component(o.name(t.object), &mut out[2 * d..]);
    out
}

/// Feature matrix + label vector for a labelled dataset.
pub fn dataset_matrix(
    o: &Ontology,
    examples: &[LabeledTriple],
    enc: &dyn ComponentEncoder,
) -> (Matrix, Vec<bool>) {
    let d = enc.dim() * 3;
    let mut data = Vec::with_capacity(examples.len() * d);
    let mut labels = Vec::with_capacity(examples.len());
    for e in examples {
        data.extend_from_slice(&triple_vector(o, e.triple, enc));
        labels.push(e.label);
    }
    (Matrix::from_vec(data, examples.len(), d), labels)
}

/// Memoised averaged-concat triple vectors, keyed `(encoder name, triple
/// key)`.
///
/// The §2.8 scenario sweeps build a fresh encoder per figure cell, and the
/// five scenarios of a task draw from one heavily-overlapping pool — so
/// without this cache the same triple is re-encoded (a full mini-BERT
/// forward pass per component for the PubmedBERT variant) once per
/// scenario. Entries are keyed by the encoder *display name*, which folds
/// in the embedding model and adaptation; callers that mutate an encoder's
/// underlying model (fine-tuning the mini-BERT) must restore it to the
/// shared snapshot before encoding through the cache, which every forest
/// path does.
///
/// The cache is sharded per encoder identity: a short-lived outer lock
/// hands out the shard `Arc`, and misses are encoded **without any lock
/// held** (two-phase: collect hits / encode misses / insert), so scheduler
/// workers warming different scenario cells never serialise on each
/// other's encoder passes. Racing same-triple encodes are benign — the
/// encoders are deterministic, so both writers produce identical vectors
/// and `or_insert` keeps the first.
/// Per-encoder inner map: triple key → its cached averaged-concat vector.
type TripleVectors = HashMap<(u32, u8, u32), Arc<[f32]>>;

/// One encoder's shard.
type Shard = Arc<Mutex<TripleVectors>>;

pub struct EncodingCache {
    shards: Mutex<HashMap<String, Shard>>,
    hits: std::sync::atomic::AtomicUsize,
    misses: std::sync::atomic::AtomicUsize,
    contended: std::sync::atomic::AtomicUsize,
}

impl EncodingCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self {
            shards: Mutex::new(HashMap::new()),
            hits: std::sync::atomic::AtomicUsize::new(0),
            misses: std::sync::atomic::AtomicUsize::new(0),
            contended: std::sync::atomic::AtomicUsize::new(0),
        }
    }

    /// Locks a shard, counting the acquisition as contended when another
    /// worker already holds it (telemetry for the sharding claim in the
    /// type docs: same-encoder cells serialise, different-encoder cells
    /// must not).
    fn lock_shard<'s>(&self, shard: &'s Shard) -> parking_lot::MutexGuard<'s, TripleVectors> {
        match shard.try_lock() {
            Some(g) => g,
            None => {
                self.contended.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                shard.lock()
            }
        }
    }

    /// Shard-lock acquisitions that found the lock already held.
    pub fn contended(&self) -> usize {
        self.contended.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The shard for one encoder identity (created on first use).
    fn shard(&self, encoder_name: &str) -> Shard {
        let mut shards = self.shards.lock();
        match shards.get(encoder_name) {
            Some(s) => s.clone(),
            None => {
                let s: Shard = Arc::default();
                shards.insert(encoder_name.to_string(), s.clone());
                s
            }
        }
    }

    /// Total cached vectors across all encoders.
    pub fn len(&self) -> usize {
        let shards: Vec<Shard> = self.shards.lock().values().cloned().collect();
        shards.iter().map(|s| s.lock().len()).sum()
    }

    /// Whether nothing has been cached yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `(hits, misses)` counters across all [`dataset_matrix_cached`]
    /// lookups (one count per triple row requested).
    pub fn hit_miss(&self) -> (usize, usize) {
        (
            self.hits.load(std::sync::atomic::Ordering::Relaxed),
            self.misses.load(std::sync::atomic::Ordering::Relaxed),
        )
    }
}

impl Default for EncodingCache {
    fn default() -> Self {
        Self::new()
    }
}

/// [`dataset_matrix`] through an [`EncodingCache`]: triples already seen
/// under this encoder are copied from the cache instead of re-encoded.
/// Bitwise identical to the uncached path (vectors are stored verbatim).
pub fn dataset_matrix_cached(
    o: &Ontology,
    examples: &[LabeledTriple],
    enc: &dyn ComponentEncoder,
    cache: &EncodingCache,
) -> (Matrix, Vec<bool>) {
    use std::sync::atomic::Ordering;
    let d = enc.dim() * 3;
    let shard = cache.shard(&enc.name());

    // Phase 1 — under the shard lock, copy hits and record distinct misses.
    let mut rows: Vec<Option<Arc<[f32]>>> = Vec::with_capacity(examples.len());
    let mut missing: Vec<Triple> = Vec::new();
    let mut missing_keys: std::collections::HashSet<(u32, u8, u32)> = Default::default();
    {
        let map = cache.lock_shard(&shard);
        for e in examples {
            match map.get(&e.triple.key()) {
                Some(v) => rows.push(Some(v.clone())),
                None => {
                    rows.push(None);
                    if missing_keys.insert(e.triple.key()) {
                        missing.push(e.triple);
                    }
                }
            }
        }
    }
    let n_hits = rows.iter().filter(|r| r.is_some()).count();
    cache.hits.fetch_add(n_hits, Ordering::Relaxed);
    cache.misses.fetch_add(examples.len() - n_hits, Ordering::Relaxed);

    // Phase 2 — encode misses with no lock held (the expensive part; for
    // the PubmedBERT variant each miss is a mini-BERT forward pass per
    // component).
    type Encoded = ((u32, u8, u32), Arc<[f32]>);
    let encoded: Vec<Encoded> =
        missing.iter().map(|&t| (t.key(), triple_vector(o, t, enc).into())).collect();

    // Phase 3 — insert and resolve the remaining rows.
    let mut data = Vec::with_capacity(examples.len() * d);
    let mut labels = Vec::with_capacity(examples.len());
    {
        let mut map = cache.lock_shard(&shard);
        for (k, v) in encoded {
            map.entry(k).or_insert(v);
        }
        for (e, row) in examples.iter().zip(&mut rows) {
            if row.is_none() {
                *row = Some(map[&e.triple.key()].clone());
            }
        }
    }
    for (e, row) in examples.iter().zip(&rows) {
        data.extend_from_slice(row.as_ref().expect("row resolved"));
        labels.push(e.label);
    }
    (Matrix::from_vec(data, examples.len(), d), labels)
}

/// Sequence form for RNN learners: token vectors with a separator row
/// between subject / relation / object (Algorithm 1's RNN branch).
pub fn triple_sequence(
    o: &Ontology,
    t: Triple,
    model: &dyn EmbeddingModel,
    adaptation: &Adaptation,
) -> Matrix {
    let tk = ChemTokenizer::new();
    let d = model.dim();
    let mut sep = vec![0.0f32; d];
    kcb_embed::model::random_vector_for("<sep>", &mut sep);
    let mut rows: Vec<Vec<f32>> = Vec::new();
    let mut buf = vec![0.0f32; d];
    for (i, text) in
        [o.name(t.subject), t.relation.phrase(), o.name(t.object)].into_iter().enumerate()
    {
        if i > 0 {
            rows.push(sep.clone());
        }
        let tokens = tk.tokenize(text);
        for tok in adaptation.apply(&tokens) {
            embed_or_random(model, tok, &mut buf);
            rows.push(buf.clone());
        }
    }
    if rows.is_empty() {
        rows.push(sep);
    }
    Matrix::from_rows(rows)
}

/// Sequences + labels for a labelled dataset.
pub fn dataset_sequences(
    o: &Ontology,
    examples: &[LabeledTriple],
    model: &dyn EmbeddingModel,
    adaptation: &Adaptation,
) -> (Vec<Matrix>, Vec<bool>) {
    let seqs = examples
        .iter()
        .map(|e| triple_sequence(o, e.triple, model, adaptation))
        .collect();
    let labels = examples.iter().map(|e| e.label).collect();
    (seqs, labels)
}

/// WordPiece id sequence for fine-tuning: `[CLS] subject [SEP] relation
/// [SEP] object [SEP]` (§2.5).
pub fn triple_token_ids(o: &Ontology, t: Triple, wp: &WordPiece) -> Vec<u32> {
    use kcb_text::wordpiece::special;
    let tk = ChemTokenizer::new();
    let mut ids = vec![special::CLS];
    for text in [o.name(t.subject), t.relation.phrase(), o.name(t.object)] {
        let words = tk.tokenize(text);
        ids.extend(wp.encode_words(words.iter().map(String::as_str)));
        ids.push(special::SEP);
    }
    ids
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::task::TaskKind;
    use kcb_embed::RandomEmbedding;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn ontology() -> Ontology {
        SyntheticGenerator::new(SyntheticConfig { scale: 0.005, seed: 55 })
            .unwrap()
            .generate()
    }

    #[test]
    fn triple_vector_concatenates_components() {
        let o = ontology();
        let model = RandomEmbedding::with_dim(8);
        let enc = TokenAvgEncoder::new(&model, Adaptation::None);
        let t = o.triples()[0];
        let v = triple_vector(&o, t, &enc);
        assert_eq!(v.len(), 24);
        // Each third equals the direct component encoding.
        let mut comp = vec![0.0f32; 8];
        enc.encode_component(o.name(t.subject), &mut comp);
        assert_eq!(&v[..8], comp.as_slice());
        enc.encode_component(o.name(t.object), &mut comp);
        assert_eq!(&v[16..], comp.as_slice());
    }

    #[test]
    fn adaptation_changes_features() {
        let o = ontology();
        let model = RandomEmbedding::with_dim(8);
        // Find a triple whose subject has short tokens.
        let tk = ChemTokenizer::new();
        let t = o
            .triples()
            .iter()
            .copied()
            .find(|t| {
                let toks = tk.tokenize(o.name(t.subject));
                toks.iter().any(|x| x.len() < 3) && toks.iter().any(|x| x.len() >= 3)
            })
            .expect("synthetic names contain short tokens");
        let plain = triple_vector(&o, t, &TokenAvgEncoder::new(&model, Adaptation::None));
        let naive = triple_vector(&o, t, &TokenAvgEncoder::new(&model, Adaptation::Naive));
        assert_ne!(plain, naive);
    }

    #[test]
    fn dataset_matrix_shapes_and_labels() {
        let o = ontology();
        let d = crate::task::TaskDataset::generate(&o, TaskKind::RandomNegatives, 1);
        let model = RandomEmbedding::with_dim(6);
        let enc = TokenAvgEncoder::new(&model, Adaptation::Naive);
        let (x, y) = dataset_matrix(&o, &d.examples[..50], &enc);
        assert_eq!(x.rows(), 50);
        assert_eq!(x.cols(), 18);
        assert_eq!(y.len(), 50);
        assert!(y.iter().any(|&l| l) && y.iter().any(|&l| !l));
    }

    #[test]
    fn sequences_have_separators() {
        let o = ontology();
        let model = RandomEmbedding::with_dim(5);
        let t = o.triples()[0];
        let seq = triple_sequence(&o, t, &model, &Adaptation::None);
        let tk = ChemTokenizer::new();
        let expected = tk.count(o.name(t.subject))
            + tk.count(t.relation.phrase())
            + tk.count(o.name(t.object))
            + 2;
        assert_eq!(seq.rows(), expected);
        assert_eq!(seq.cols(), 5);
        // Separator rows are identical.
        let mut sep = vec![0.0f32; 5];
        kcb_embed::model::random_vector_for("<sep>", &mut sep);
        let n_sep = (0..seq.rows()).filter(|&r| seq.row(r) == sep.as_slice()).count();
        assert_eq!(n_sep, 2);
    }

    #[test]
    fn token_ids_follow_cls_sep_layout() {
        use kcb_text::wordpiece::special;
        let o = ontology();
        let wp = kcb_text::WordPieceTrainer { target_vocab: 300, min_pair_count: 1 }.train(
            &o.entities()
                .iter()
                .take(200)
                .flat_map(|e| ChemTokenizer::new().tokenize(&e.name))
                .map(|t| (t, 1u64))
                .collect(),
        );
        let t = o.triples()[0];
        let ids = triple_token_ids(&o, t, &wp);
        assert_eq!(ids[0], special::CLS);
        assert_eq!(ids.iter().filter(|&&i| i == special::SEP).count(), 3);
        assert_eq!(*ids.last().unwrap(), special::SEP);
    }

    #[test]
    fn encoding_cache_shares_across_encoder_instances() {
        let o = ontology();
        let d = crate::task::TaskDataset::generate(&o, TaskKind::RandomNegatives, 1);
        let ex = &d.examples[..30];
        let model = RandomEmbedding::with_dim(8);
        let cache = EncodingCache::new();
        assert!(cache.is_empty());

        let enc1 = TokenAvgEncoder::new(&model, Adaptation::Naive);
        let (a, _) = dataset_matrix_cached(&o, ex, &enc1, &cache);
        let n = cache.len();
        assert!(n > 0 && n <= ex.len());

        // A fresh encoder instance with the same identity hits the cache
        // (this is exactly what the scenario sweeps do per figure cell).
        let enc2 = TokenAvgEncoder::new(&model, Adaptation::Naive);
        let (b, _) = dataset_matrix_cached(&o, ex, &enc2, &cache);
        assert_eq!(cache.len(), n, "second pass must add no entries");
        assert_eq!(a.as_slice(), b.as_slice());

        // Bitwise identical to the uncached path.
        let (c, _) = dataset_matrix(&o, ex, &TokenAvgEncoder::new(&model, Adaptation::Naive));
        assert_eq!(a.as_slice(), c.as_slice());

        // A different adaptation is a different cache key.
        let enc3 = TokenAvgEncoder::new(&model, Adaptation::None);
        let _ = dataset_matrix_cached(&o, ex, &enc3, &cache);
        assert!(cache.len() > n, "distinct encoder identities must not collide");
    }

    #[test]
    fn encoder_cache_is_consistent() {
        let o = ontology();
        let model = RandomEmbedding::with_dim(8);
        let enc = TokenAvgEncoder::new(&model, Adaptation::None);
        let t = o.triples()[0];
        let a = triple_vector(&o, t, &enc);
        let b = triple_vector(&o, t, &enc); // second call hits the cache
        assert_eq!(a, b);
    }
}
