//! Experiment artifacts: a titled set of text tables plus a JSON payload,
//! printable to stdout and persistable for EXPERIMENTS.md bookkeeping.

use kcb_util::fmt::Table;
use serde_json::Value;

/// One reproduced paper artifact (a table or figure).
#[derive(Debug)]
pub struct Artifact {
    /// Paper reference, e.g. `"Table 3a"` or `"Figure 3"`.
    pub id: String,
    /// What the artifact shows.
    pub title: String,
    /// Rendered text tables (figures become series tables).
    pub tables: Vec<Table>,
    /// Structured payload of the same data.
    pub json: Value,
}

impl Artifact {
    /// Creates an artifact.
    pub fn new(id: impl Into<String>, title: impl Into<String>) -> Self {
        Self { id: id.into(), title: title.into(), tables: Vec::new(), json: Value::Null }
    }

    /// Adds a table.
    pub fn push_table(&mut self, table: Table) -> &mut Self {
        self.tables.push(table);
        self
    }

    /// Sets the JSON payload.
    pub fn set_json(&mut self, json: Value) -> &mut Self {
        self.json = json;
        self
    }

    /// Renders the whole artifact as text.
    pub fn render(&self) -> String {
        let mut out = format!("=== {} — {} ===\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str(&t.render());
            out.push('\n');
        }
        out
    }

    /// Renders the artifact as a Markdown section (fenced tables keep the
    /// monospace alignment).
    pub fn render_markdown(&self) -> String {
        let mut out = format!("## {} — {}\n\n", self.id, self.title);
        for t in &self.tables {
            out.push_str("```text\n");
            out.push_str(&t.render());
            out.push_str("```\n\n");
        }
        out
    }

    /// Full structural projection — id, title, tables, payload — persisted
    /// by the run journal so an interrupted run can replay the artifact
    /// byte-for-byte without re-running its experiment.
    pub fn to_replay_json(&self) -> Value {
        Value::Object(vec![
            ("id".to_string(), Value::String(self.id.clone())),
            ("title".to_string(), Value::String(self.title.clone())),
            ("tables".to_string(), Value::Array(self.tables.iter().map(Table::to_json).collect())),
            ("json".to_string(), self.json.clone()),
        ])
    }

    /// Inverse of [`Artifact::to_replay_json`]. `None` when the value does
    /// not have the projected shape (replay then falls back to
    /// reassembling the artifact from scratch).
    pub fn from_replay_json(v: &Value) -> Option<Self> {
        let tables = v
            .get("tables")?
            .as_array()?
            .iter()
            .map(Table::from_json)
            .collect::<Option<Vec<_>>>()?;
        Some(Self {
            id: v.get("id")?.as_str()?.to_string(),
            title: v.get("title")?.as_str()?.to_string(),
            tables,
            json: v.get("json")?.clone(),
        })
    }

    /// Writes the JSON payload (wrapped with id/title) to a file.
    pub fn write_json(&self, dir: &std::path::Path) -> kcb_util::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let slug: String = self
            .id
            .to_lowercase()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = dir.join(format!("{slug}.json"));
        let wrapped = serde_json::json!({
            "id": self.id,
            "title": self.title,
            "data": self.json,
        });
        std::fs::write(&path, serde_json::to_string_pretty(&wrapped).expect("serializable"))?;
        Ok(path)
    }
}

/// Formats a [`kcb_ml::metrics::BinaryMetrics`] row fragment
/// (`precision`, `recall`, `f1`) in the paper's 4-decimal style.
pub fn prf_cells(m: &kcb_ml::metrics::BinaryMetrics) -> Vec<String> {
    vec![
        kcb_util::fmt::metric(m.precision),
        kcb_util::fmt::metric(m.recall),
        kcb_util::fmt::metric(m.f1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifact_renders_and_persists() {
        let mut a = Artifact::new("Table 2", "Dataset statistics");
        let mut t = Table::new("demo", &["k", "v"]).numeric_after(1);
        t.row(vec!["size".into(), "620,386".into()]);
        a.push_table(t);
        a.set_json(serde_json::json!({"size": 620386}));
        let s = a.render();
        assert!(s.contains("Table 2"));
        assert!(s.contains("620,386"));

        let dir = std::env::temp_dir().join("kcb-report-test");
        let path = a.write_json(&dir).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"id\": \"Table 2\""));
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn replay_json_round_trips_render_bytes() {
        let mut a = Artifact::new("Table 3a", "Task 1 forests");
        let mut t = Table::new("demo", &["model", "f1"]).numeric_after(1);
        t.row(vec!["glove".into(), "0.9559".into()]);
        a.push_table(t);
        a.set_json(serde_json::json!({"f1": [0.9559, 1.0], "n": 3}));
        let payload = a.to_replay_json().render_json(None);
        let v = kcb_util::json::parse_value(&payload).unwrap();
        let b = Artifact::from_replay_json(&v).unwrap();
        // The replayed artifact must render the same text and persist the
        // same JSON — the byte-identity the resume path depends on.
        assert_eq!(b.render(), a.render());
        assert_eq!(
            serde_json::to_string_pretty(&b.json).unwrap(),
            serde_json::to_string_pretty(&a.json).unwrap()
        );
        assert_eq!(b.to_replay_json().render_json(None), payload);
    }

    #[test]
    fn markdown_rendering_fences_tables() {
        let mut a = Artifact::new("Figure 3", "Scenario sweep");
        let mut t = Table::new("demo", &["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        a.push_table(t);
        let md = a.render_markdown();
        assert!(md.starts_with("## Figure 3 — Scenario sweep"));
        assert_eq!(md.matches("```").count(), 2);
        assert!(md.contains("demo"));
    }

    #[test]
    fn prf_cells_format() {
        let m = kcb_ml::metrics::BinaryMetrics {
            accuracy: 0.9,
            precision: 0.969,
            recall: 0.9690,
            f1: 0.96901,
        };
        assert_eq!(prf_cells(&m), vec!["0.9690", "0.9690", "0.9690"]);
    }
}
