//! The shared experiment environment.
//!
//! Every table/figure runner needs the same expensive components: the
//! synthetic ontology, the three task datasets, the two corpora, five
//! trained embedding models, the WordPiece vocabulary, a pre-trained
//! mini-BERT (with a weight snapshot so fine-tuning runs can restart from
//! the same checkpoint) and the domain-pre-trained BioGPT-mini. [`Lab`]
//! builds each lazily, exactly once, as a deterministic function of
//! [`LabConfig`].
//!
//! Since PR 2 the environment is split along the `Send`/`Sync` boundary:
//!
//! * [`Shared`] holds everything that is plain data once built — ontology,
//!   datasets, corpora, embeddings, WordPiece, the forest/LSTM/score memo
//!   caches and the [`crate::compose::EncodingCache`]. All of its caches
//!   are thread-safe (`OnceLock` / mutex-guarded slot maps), so the cell
//!   scheduler's worker threads can warm them concurrently; a slot that is
//!   being computed blocks later requesters instead of recomputing.
//! * [`Lab`] wraps a [`Shared`] and adds the two language models. Their
//!   autograd tensors are `Rc<RefCell<…>>`-based (`!Send`), so BERT and
//!   BioGPT live only on the thread that owns the `Lab` — the scheduler's
//!   *driver* thread. `Lab` derefs to [`Shared`], so existing call sites
//!   are oblivious to the split.

use crate::adapt::{task_oriented_stopwords, Adaptation, TaskOrientedConfig};
use crate::ckpt::{self, CkptStore};
use crate::dataset::Split;
use crate::paradigm::ml::{run_lstm, ForestRun, LstmRun};
use crate::task::{positive_triples, TaskDataset, TaskKind};
use kcb_embed::{
    fasttext, glove, word2vec, EmbeddingModel, EmbeddingTable, FastText, RandomEmbedding,
};
use kcb_icl::BioGptMini;
use kcb_lm::{MiniBert, MiniBertConfig, MiniGpt, MiniGptConfig, TrainConfig, TransformerConfig};
use kcb_ml::linalg::Matrix;
use kcb_ml::{LstmConfig, RandomForestConfig};
use kcb_ontology::{Ontology, SyntheticConfig, SyntheticGenerator};
use kcb_text::{
    corpus::tokenize_corpus, ChemTokenizer, CorpusConfig, DomainCorpusGenerator,
    GenericCorpusGenerator, WordPiece, WordPieceTrainer,
};
use kcb_util::Rng;
use parking_lot::Mutex;
use std::cell::OnceCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Everything tunable about an experiment environment.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Ontology scale relative to real ChEBI (see `kcb-ontology`).
    pub scale: f64,
    /// Master seed.
    pub seed: u64,
    /// Word-embedding width (the paper uses 300; mini default 48).
    pub embed_dim: usize,
    /// Domain-corpus documents (the paper's 7,201 papers stand-in).
    pub n_domain_docs: usize,
    /// Generic-corpus documents (the GloVe Common-Crawl stand-in).
    pub n_generic_docs: usize,
    /// Epochs for the embedding trainers.
    pub embed_epochs: usize,
    /// WordPiece vocabulary size.
    pub wp_vocab: usize,
    /// Mini-BERT architecture (`vocab_size` is filled from the trained
    /// WordPiece).
    pub bert_arch: TransformerConfig,
    /// Mini-BERT MLM pre-training schedule.
    pub bert_pretrain: TrainConfig,
    /// Cap on MLM pre-training sequences.
    pub bert_pretrain_cap: usize,
    /// BioGPT-mini architecture.
    pub gpt_arch: TransformerConfig,
    /// BioGPT-mini CLM pre-training schedule.
    pub gpt_pretrain: TrainConfig,
    /// Cap on CLM pre-training sequences.
    pub gpt_pretrain_cap: usize,
    /// Random-forest hyperparameters.
    pub rf: RandomForestConfig,
    /// LSTM hyperparameters.
    pub lstm: LstmConfig,
    /// Algorithm 2 parameters.
    pub task_oriented: TaskOrientedConfig,
    /// Cap on random-forest training rows per experiment run (keeps the
    /// full table sweeps tractable; the paper's full-data runs are
    /// reproduced by raising this together with `scale`).
    pub train_cap: usize,
    /// Cap on fine-tuning sequences per run.
    pub ft_train_cap: usize,
    /// Fine-tuning schedule (the paper: 3 epochs, Adam).
    pub ft_schedule: TrainConfig,
    /// Fraction of the full dataset forming the §2.8 scenario pool.
    pub scenario_fraction: f64,
    /// Queries per class in ICL experiments (paper: 50).
    pub icl_queries: usize,
    /// Prompt repeats in ICL experiments (paper: 5).
    pub icl_repeats: usize,
}

impl Default for LabConfig {
    fn default() -> Self {
        let seed = 42;
        Self {
            scale: 0.03,
            seed,
            embed_dim: 48,
            n_domain_docs: 700,
            n_generic_docs: 500,
            embed_epochs: 4,
            wp_vocab: 1_200,
            bert_arch: TransformerConfig {
                vocab_size: 0,
                d_model: 48,
                n_heads: 4,
                n_layers: 2,
                d_ff: 96,
                max_len: 48,
                seed,
            },
            bert_pretrain: TrainConfig { epochs: 2, lr: 1e-3, batch_size: 16, seed },
            bert_pretrain_cap: 2_500,
            gpt_arch: TransformerConfig {
                vocab_size: 0,
                d_model: 48,
                n_heads: 4,
                n_layers: 2,
                d_ff: 96,
                max_len: 48,
                seed,
            },
            gpt_pretrain: TrainConfig { epochs: 2, lr: 1e-3, batch_size: 16, seed },
            gpt_pretrain_cap: 1_500,
            rf: RandomForestConfig { n_trees: 40, max_depth: 18, ..RandomForestConfig::default() },
            lstm: LstmConfig { hidden: 32, epochs: 3, ..LstmConfig::default() },
            task_oriented: TaskOrientedConfig {
                n_entities: 1_500,
                iterations: 8,
                n_pairs: 800,
                ..TaskOrientedConfig::default()
            },
            train_cap: 20_000,
            ft_train_cap: 3_000,
            ft_schedule: TrainConfig { epochs: 3, lr: 1e-3, batch_size: 16, seed },
            scenario_fraction: 0.25,
            icl_queries: 50,
            icl_repeats: 5,
        }
    }
}

impl LabConfig {
    /// A very small configuration for unit/integration tests.
    pub fn tiny() -> Self {
        Self {
            scale: 0.006,
            n_domain_docs: 120,
            n_generic_docs: 80,
            embed_epochs: 2,
            wp_vocab: 500,
            bert_arch: TransformerConfig {
                vocab_size: 0,
                d_model: 24,
                n_heads: 2,
                n_layers: 1,
                d_ff: 48,
                max_len: 32,
                seed: 42,
            },
            bert_pretrain: TrainConfig { epochs: 1, lr: 2e-3, batch_size: 16, seed: 42 },
            bert_pretrain_cap: 300,
            gpt_arch: TransformerConfig {
                vocab_size: 0,
                d_model: 24,
                n_heads: 2,
                n_layers: 1,
                d_ff: 48,
                max_len: 32,
                seed: 42,
            },
            gpt_pretrain: TrainConfig { epochs: 3, lr: 2e-3, batch_size: 16, seed: 42 },
            gpt_pretrain_cap: 200,
            rf: RandomForestConfig { n_trees: 16, max_depth: 14, ..RandomForestConfig::default() },
            lstm: LstmConfig { hidden: 16, epochs: 2, ..LstmConfig::default() },
            task_oriented: TaskOrientedConfig {
                n_entities: 300,
                iterations: 4,
                n_pairs: 300,
                ..TaskOrientedConfig::default()
            },
            train_cap: 1_200,
            ft_train_cap: 400,
            ft_schedule: TrainConfig { epochs: 2, lr: 2e-3, batch_size: 16, seed: 42 },
            scenario_fraction: 0.5,
            icl_queries: 20,
            icl_repeats: 3,
            ..Self::default()
        }
    }
}

impl LabConfig {
    /// Propagates one master seed into every nested seeded component
    /// (ontology, learners, LM init and training schedules) so `--seed`
    /// really reseeds the whole experiment.
    pub fn reseed(&mut self, seed: u64) {
        self.seed = seed;
        self.rf.seed = seed;
        self.lstm.seed = seed;
        self.bert_arch.seed = seed;
        self.gpt_arch.seed = seed;
        self.bert_pretrain.seed = seed;
        self.gpt_pretrain.seed = seed;
        self.ft_schedule.seed = seed;
        self.task_oriented.seed = seed;
    }
}

/// Names of the token-level embedding models, in the paper's table order.
pub const EMBEDDING_NAMES: [&str; 5] = ["random", "glove", "w2v-chem", "glove-chem", "biowordvec"];

/// A keyed once-cell: the slot map hands out `Arc`s under a short lock,
/// then `OnceLock` serialises the (potentially long) computation per key
/// without holding the map — concurrent requests for *different* keys
/// proceed in parallel, concurrent requests for the *same* key compute
/// once and share.
type SlotMap<T> = Mutex<HashMap<String, Arc<OnceLock<T>>>>;

fn slot<T>(map: &SlotMap<T>, key: &str) -> Arc<OnceLock<T>> {
    let mut m = map.lock();
    match m.get(key) {
        Some(s) => s.clone(),
        None => {
            let s = Arc::new(OnceLock::new());
            m.insert(key.to_string(), s.clone());
            s
        }
    }
}

/// Hit/miss counters for the lab's memo caches, reported by the scheduler.
#[derive(Debug, Clone, Copy, Default, serde::Serialize)]
pub struct CacheStats {
    /// Memoised scalar scores served without recompute.
    pub memo_hits: usize,
    /// Memoised scalar scores computed.
    pub memo_misses: usize,
    /// Forest runs served from the `(task, model, adaptation)` cache.
    pub forest_hits: usize,
    /// Forest runs computed.
    pub forest_misses: usize,
    /// Persistent checkpoints served from disk ([`crate::ckpt`]).
    pub ckpt_hits: usize,
    /// Persistent checkpoint lookups that fell back to training.
    pub ckpt_misses: usize,
    /// Provider jobs that skipped eager materialization because their
    /// checkpoint was known-fresh within the run.
    pub provider_skips: usize,
}

/// The thread-safe core of the experiment environment: every component
/// that is plain data once built. See the module docs for the split.
pub struct Shared {
    cfg: LabConfig,
    ckpt: Option<Arc<CkptStore>>,
    ontology: OnceLock<Ontology>,
    tasks: [OnceLock<TaskDataset>; 3],
    splits: [OnceLock<Split>; 3],
    domain_sentences: OnceLock<Vec<Vec<String>>>,
    generic_sentences: OnceLock<Vec<Vec<String>>>,
    random: RandomEmbedding,
    w2v_chem: OnceLock<EmbeddingTable>,
    glove: OnceLock<EmbeddingTable>,
    glove_chem: OnceLock<EmbeddingTable>,
    biowordvec: OnceLock<FastText>,
    wordpiece: OnceLock<WordPiece>,
    stopwords: SlotMap<HashSet<String>>,
    forest_runs: SlotMap<Arc<ForestRun>>,
    lstm_runs: SlotMap<Arc<LstmRun>>,
    encodings: crate::compose::EncodingCache,
    memo_scores: SlotMap<f64>,
    memo_vecs: SlotMap<Arc<Vec<f64>>>,
    memo_hits: AtomicUsize,
    memo_misses: AtomicUsize,
    forest_hits: AtomicUsize,
    forest_misses: AtomicUsize,
    provider_skips: AtomicUsize,
}

impl Shared {
    fn new(cfg: LabConfig, ckpt: Option<Arc<CkptStore>>) -> Self {
        let random = RandomEmbedding::with_dim(cfg.embed_dim);
        Self {
            cfg,
            ckpt,
            ontology: OnceLock::new(),
            tasks: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            splits: [OnceLock::new(), OnceLock::new(), OnceLock::new()],
            domain_sentences: OnceLock::new(),
            generic_sentences: OnceLock::new(),
            random,
            w2v_chem: OnceLock::new(),
            glove: OnceLock::new(),
            glove_chem: OnceLock::new(),
            biowordvec: OnceLock::new(),
            wordpiece: OnceLock::new(),
            stopwords: Mutex::new(HashMap::new()),
            forest_runs: Mutex::new(HashMap::new()),
            lstm_runs: Mutex::new(HashMap::new()),
            encodings: crate::compose::EncodingCache::new(),
            memo_scores: Mutex::new(HashMap::new()),
            memo_vecs: Mutex::new(HashMap::new()),
            memo_hits: AtomicUsize::new(0),
            memo_misses: AtomicUsize::new(0),
            forest_hits: AtomicUsize::new(0),
            forest_misses: AtomicUsize::new(0),
            provider_skips: AtomicUsize::new(0),
        }
    }

    /// The lab-wide triple-encoding cache (see
    /// [`crate::compose::EncodingCache`]). Every forest run through the lab
    /// encodes via this cache, so the canonical splits and the §2.8
    /// scenario sweeps share triple vectors per encoder identity.
    pub fn encodings(&self) -> &crate::compose::EncodingCache {
        &self.encodings
    }

    /// Memoises an expensive scalar score under a caller-chosen key.
    ///
    /// Figure runners use this for cells that several artifacts compute
    /// identically (a Figure 3 / Figure A2 scenario cell, a per-task GPT-4
    /// reference line): the first caller pays, later callers read. Safe
    /// from any thread; concurrent same-key calls compute once (the rest
    /// block on the slot), different keys run in parallel.
    pub fn memo_score(&self, key: String, compute: impl FnOnce() -> f64) -> f64 {
        let s = slot(&self.memo_scores, &key);
        if let Some(v) = s.get() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return *v;
        }
        *s.get_or_init(|| {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            compute()
        })
    }

    /// Memoises an expensive result row (a fixed-width vector of numbers)
    /// under a caller-chosen key — the vector-valued sibling of
    /// [`Shared::memo_score`], sharing its hit/miss counters. Table runners
    /// use it for rows the derived-results checkpoint can replay (a Table 4
    /// fine-tuning row, a Table 5 ICL result).
    pub fn memo_vec(&self, key: String, compute: impl FnOnce() -> Vec<f64>) -> Arc<Vec<f64>> {
        let s = slot(&self.memo_vecs, &key);
        if let Some(v) = s.get() {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return v.clone();
        }
        s.get_or_init(|| {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            Arc::new(compute())
        })
        .clone()
    }

    /// Memo-cache hit/miss counters (for the scheduler report).
    pub fn cache_stats(&self) -> CacheStats {
        let (ckpt_hits, ckpt_misses) =
            self.ckpt.as_deref().map(CkptStore::stats).unwrap_or((0, 0));
        CacheStats {
            memo_hits: self.memo_hits.load(Ordering::Relaxed),
            memo_misses: self.memo_misses.load(Ordering::Relaxed),
            forest_hits: self.forest_hits.load(Ordering::Relaxed),
            forest_misses: self.forest_misses.load(Ordering::Relaxed),
            ckpt_hits,
            ckpt_misses,
            provider_skips: self.provider_skips.load(Ordering::Relaxed),
        }
    }

    /// The attached persistent checkpoint store, if any.
    pub fn checkpoint_store(&self) -> Option<&CkptStore> {
        self.ckpt.as_deref()
    }

    /// FNV-64 hex digest of the configuration with the forest thread knob
    /// normalised out. Names the run-journal directory
    /// (`results/runs/<config-digest>/`), so re-running the same config
    /// resumes the same journal at any worker count.
    pub fn config_digest(&self) -> String {
        let mut c = self.cfg.clone();
        c.rf.n_threads = 0;
        format!("{:016x}", kcb_util::fnv1a(format!("{c:?}").as_bytes()))
    }

    /// Content key of the derived-results checkpoint: the full config,
    /// with the forest's thread knob normalised out (thread count is a
    /// wall-clock knob, never a results knob).
    fn derived_key(&self) -> String {
        let mut c = self.cfg.clone();
        c.rf.n_threads = 0;
        ckpt::digest_key(ckpt::SCHEMA_DERIVED, &[&format!("{c:?}")])
    }

    /// Prefills the memo/forest/LSTM slot maps from the derived-results
    /// checkpoint (no-op without a store or on a cold/missing cache).
    fn load_derived(&self) {
        let Some(store) = self.ckpt.as_deref() else { return };
        let Some(d) = store.take("derived", &self.derived_key(), ckpt::Derived::from_bytes)
        else {
            return;
        };
        for (k, v) in d.scores {
            let _ = slot(&self.memo_scores, &k).set(v);
        }
        for (k, v) in d.vecs {
            let _ = slot(&self.memo_vecs, &k).set(Arc::new(v));
        }
        for (k, run) in d.forests {
            let _ = slot(&self.forest_runs, &k).set(run);
        }
        for (k, run) in d.lstms {
            let _ = slot(&self.lstm_runs, &k).set(run);
        }
    }

    /// Writes the derived-results checkpoint: every memoised score/row,
    /// forest run and LSTM run computed (or replayed) so far. Entries are
    /// sorted by key so the payload bytes are deterministic. No-op without
    /// a store.
    pub fn save_checkpoints(&self) {
        let Some(store) = self.ckpt.as_deref() else { return };
        let mut d = ckpt::Derived::default();
        for (k, s) in self.memo_scores.lock().iter() {
            if let Some(v) = s.get() {
                d.scores.push((k.clone(), *v));
            }
        }
        for (k, s) in self.memo_vecs.lock().iter() {
            if let Some(v) = s.get() {
                d.vecs.push((k.clone(), (**v).clone()));
            }
        }
        for (k, s) in self.forest_runs.lock().iter() {
            if let Some(run) = s.get() {
                d.forests.push((k.clone(), run.clone()));
            }
        }
        for (k, s) in self.lstm_runs.lock().iter() {
            if let Some(run) = s.get() {
                d.lstms.push((k.clone(), run.clone()));
            }
        }
        d.scores.sort_by(|a, b| a.0.cmp(&b.0));
        d.vecs.sort_by(|a, b| a.0.cmp(&b.0));
        d.forests.sort_by(|a, b| a.0.cmp(&b.0));
        d.lstms.sort_by(|a, b| a.0.cmp(&b.0));
        store.put("derived", &self.derived_key(), &d.to_bytes());
    }

    /// The configuration.
    pub fn config(&self) -> &LabConfig {
        &self.cfg
    }

    /// The synthetic ontology.
    pub fn ontology(&self) -> &Ontology {
        self.ontology.get_or_init(|| {
            SyntheticGenerator::new(SyntheticConfig { scale: self.cfg.scale, seed: self.cfg.seed })
                .expect("valid synthetic config")
                .generate()
        })
    }

    /// The full dataset for a task.
    pub fn task(&self, task: TaskKind) -> &TaskDataset {
        self.tasks[task.number() - 1]
            .get_or_init(|| TaskDataset::generate(self.ontology(), task, self.cfg.seed))
    }

    /// The canonical 9:1 split for a task (the supervised-learning setup).
    pub fn split(&self, task: TaskKind) -> &Split {
        self.splits[task.number() - 1]
            .get_or_init(|| Split::nine_to_one(self.task(task), self.cfg.seed))
    }

    /// Tokenized domain-corpus sentences (the chemistry-papers stand-in).
    pub fn domain_sentences(&self) -> &Vec<Vec<String>> {
        self.domain_sentences.get_or_init(|| {
            let cfg = CorpusConfig {
                n_docs: self.cfg.n_domain_docs,
                seed: self.cfg.seed,
                ..CorpusConfig::default()
            };
            let docs = DomainCorpusGenerator::new(self.ontology(), cfg).generate();
            tokenize_corpus(&docs, &ChemTokenizer::new())
        })
    }

    /// Tokenized generic-corpus sentences (the Common-Crawl stand-in).
    pub fn generic_sentences(&self) -> &Vec<Vec<String>> {
        self.generic_sentences.get_or_init(|| {
            let cfg = CorpusConfig {
                n_docs: self.cfg.n_generic_docs,
                seed: self.cfg.seed ^ 0x9e37,
                ..CorpusConfig::default()
            };
            let docs = GenericCorpusGenerator::new(cfg).generate();
            tokenize_corpus(&docs, &ChemTokenizer::new())
        })
    }

    /// The random embedding model.
    pub fn random(&self) -> &RandomEmbedding {
        &self.random
    }

    /// The GloVe trainer configuration (shared by `glove` / `glove-chem`).
    fn glove_train_cfg(&self) -> glove::GloveConfig {
        glove::GloveConfig {
            dim: self.cfg.embed_dim,
            epochs: self.cfg.embed_epochs * 2,
            seed: self.cfg.seed,
            ..glove::GloveConfig::default()
        }
    }

    /// Content key of the generic-GloVe checkpoint (also a determinant of
    /// the warm-started GloVe-Chem key).
    fn glove_ckpt_key(&self) -> String {
        ckpt::digest_key(
            ckpt::SCHEMA_GLOVE,
            &[&format!("{:?}", self.glove_train_cfg()), &ckpt::generic_fp(&self.cfg)],
        )
    }

    /// Content key of the WordPiece checkpoint (also a determinant of both
    /// LM keys — the vocabulary fixes their token ids).
    fn wordpiece_ckpt_key(&self) -> String {
        ckpt::digest_key(
            ckpt::SCHEMA_WORDPIECE,
            &[&self.cfg.wp_vocab.to_string(), &ckpt::domain_fp(&self.cfg)],
        )
    }

    /// The word2vec trainer configuration for W2V-Chem.
    fn w2v_train_cfg(&self) -> word2vec::Word2VecConfig {
        word2vec::Word2VecConfig {
            dim: self.cfg.embed_dim,
            epochs: self.cfg.embed_epochs,
            seed: self.cfg.seed,
            ..word2vec::Word2VecConfig::default()
        }
    }

    /// Content key of the W2V-Chem checkpoint.
    fn w2v_ckpt_key(&self) -> String {
        ckpt::digest_key(
            ckpt::SCHEMA_W2V,
            &[&format!("{:?}", self.w2v_train_cfg()), &ckpt::domain_fp(&self.cfg)],
        )
    }

    /// Content key of the GloVe-Chem checkpoint. The warm-start parent is a
    /// training input, so its key is a determinant of this one.
    fn glove_chem_ckpt_key(&self) -> String {
        ckpt::digest_key(
            ckpt::SCHEMA_GLOVE_CHEM,
            &[
                &format!("{:?}", self.glove_train_cfg()),
                &self.glove_ckpt_key(),
                &ckpt::domain_fp(&self.cfg),
            ],
        )
    }

    /// The fastText trainer configuration for the BioWordVec stand-in.
    fn biowordvec_train_cfg(&self) -> fasttext::FastTextConfig {
        fasttext::FastTextConfig {
            dim: self.cfg.embed_dim,
            epochs: self.cfg.embed_epochs,
            buckets: 8_192,
            seed: self.cfg.seed,
            ..fasttext::FastTextConfig::default()
        }
    }

    /// Content key of the BioWordVec checkpoint.
    fn biowordvec_ckpt_key(&self) -> String {
        ckpt::digest_key(
            ckpt::SCHEMA_BIOWORDVEC,
            &[
                &format!("{:?}", self.biowordvec_train_cfg()),
                &ckpt::domain_fp(&self.cfg),
                &ckpt::generic_fp(&self.cfg),
            ],
        )
    }

    /// W2V-Chem: word2vec trained from scratch on the domain corpus.
    pub fn w2v_chem(&self) -> &EmbeddingTable {
        self.w2v_chem.get_or_init(|| {
            let cfg = self.w2v_train_cfg();
            ckpt::cached_raw(
                self.ckpt.as_deref(),
                "embed-w2v-chem",
                &self.w2v_ckpt_key(),
                kcb_embed::store::from_raw,
                kcb_embed::store::from_bytes,
                |t| {
                    let (meta, vectors) = kcb_embed::store::raw_parts(t);
                    (meta, vec![vectors])
                },
                || word2vec::train("w2v-chem", self.domain_sentences(), &cfg),
            )
        })
    }

    /// Generic GloVe: trained on the generic corpus only.
    pub fn glove(&self) -> &EmbeddingTable {
        self.glove.get_or_init(|| {
            let cfg = self.glove_train_cfg();
            ckpt::cached_raw(
                self.ckpt.as_deref(),
                "embed-glove",
                &self.glove_ckpt_key(),
                kcb_embed::store::from_raw,
                kcb_embed::store::from_bytes,
                |t| {
                    let (meta, vectors) = kcb_embed::store::raw_parts(t);
                    (meta, vec![vectors])
                },
                || glove::train("glove", self.generic_sentences(), &cfg),
            )
        })
    }

    /// GloVe-Chem: generic GloVe further trained on the domain corpus with
    /// a joined vocabulary.
    pub fn glove_chem(&self) -> &EmbeddingTable {
        self.glove_chem.get_or_init(|| {
            let cfg = self.glove_train_cfg();
            ckpt::cached_raw(
                self.ckpt.as_deref(),
                "embed-glove-chem",
                &self.glove_chem_ckpt_key(),
                kcb_embed::store::from_raw,
                kcb_embed::store::from_bytes,
                |t| {
                    let (meta, vectors) = kcb_embed::store::raw_parts(t);
                    (meta, vec![vectors])
                },
                || glove::train_warm("glove-chem", self.domain_sentences(), &cfg, self.glove()),
            )
        })
    }

    /// BioWordVec stand-in: fastText subword embeddings on domain +
    /// generic text. Stays on the version-1 decode container: a fastText
    /// model is word table + n-gram buckets + composition parameters, not
    /// one flat matrix, so it exercises the legacy path by design.
    pub fn biowordvec(&self) -> &FastText {
        self.biowordvec.get_or_init(|| {
            let cfg = self.biowordvec_train_cfg();
            ckpt::cached(
                self.ckpt.as_deref(),
                "embed-biowordvec",
                &self.biowordvec_ckpt_key(),
                kcb_embed::store::fasttext_from_bytes,
                kcb_embed::store::fasttext_to_bytes,
                || {
                    let mut corpus = self.domain_sentences().clone();
                    corpus.extend(self.generic_sentences().iter().cloned());
                    FastText::train("biowordvec", &corpus, &cfg)
                },
            )
        })
    }

    /// Freshness probe for a provider the experiment graph schedules
    /// eagerly: true when a warm checkpoint file plausibly covers it, in
    /// which case the provider job can skip materialization and let the
    /// first consumer decode lazily (the getter still verifies in full).
    /// Unknown names are never fresh.
    pub fn provider_fresh(&self, name: &str) -> bool {
        let Some(store) = self.ckpt.as_deref() else { return false };
        let key = match name {
            "embed-w2v-chem" => self.w2v_ckpt_key(),
            "embed-glove" => self.glove_ckpt_key(),
            "embed-glove-chem" => self.glove_chem_ckpt_key(),
            "embed-biowordvec" => self.biowordvec_ckpt_key(),
            "wordpiece" => self.wordpiece_ckpt_key(),
            _ => return false,
        };
        // glove-chem warm-starts from glove: its checkpoint replaces the
        // training, so a fresh child never needs the parent materialised.
        store.is_fresh(name, &key)
    }

    /// Counts one provider job that skipped eager materialization because
    /// its checkpoint was known-fresh (reported via `run_meta.json`).
    pub fn note_provider_skip(&self) {
        self.provider_skips.fetch_add(1, Ordering::Relaxed);
    }

    /// Content-addressed input key for a provider, by the unprefixed job
    /// label suffix (`"ontology"`, `"task1"`, `"embed-glove"`, `"bert"`,
    /// …). Used for the journal's per-job input provenance and by the
    /// sweep compiler's dedup plan: equal keys ⇒ identical provider
    /// content, so the jobs are shareable across variants. Every arm is
    /// cheap — the trained embeddings reuse their real checkpoint keys
    /// (pure string digests), while the LM entries digest the
    /// *determinants* of their checkpoint keys (architecture template,
    /// pretrain schedule, WordPiece determinants, corpus fingerprint)
    /// rather than the keys themselves, so nothing is materialised.
    /// Unknown names get `None`.
    pub fn provider_input_key(&self, name: &str) -> Option<String> {
        let fp = |parts: &[&str]| {
            format!("{:016x}", kcb_util::fnv1a(parts.join("\x1f").as_bytes()))
        };
        let gen = |kind: &str| {
            fp(&[kind, &self.cfg.scale.to_string(), &self.cfg.seed.to_string()])
        };
        Some(match name {
            "ontology" => gen("ontology"),
            "corpus-domain" => ckpt::domain_fp(&self.cfg),
            "corpus-generic" => ckpt::generic_fp(&self.cfg),
            "task1" | "task2" | "task3" | "split1" | "split2" | "split3" => gen(name),
            "embed-random" => fp(&[
                "embed-random",
                &self.cfg.embed_dim.to_string(),
                &self.cfg.seed.to_string(),
            ]),
            "embed-glove" => self.glove_ckpt_key(),
            "embed-w2v-chem" => self.w2v_ckpt_key(),
            "embed-glove-chem" => self.glove_chem_ckpt_key(),
            "embed-biowordvec" => self.biowordvec_ckpt_key(),
            "wordpiece" => self.wordpiece_ckpt_key(),
            "bert" | "lm-bert" => fp(&[
                "lm-bert",
                &format!("{:?}", self.cfg.bert_arch),
                &format!("{:?}", self.cfg.bert_pretrain),
                &self.cfg.bert_pretrain_cap.to_string(),
                &self.wordpiece_ckpt_key(),
                &ckpt::domain_fp(&self.cfg),
            ]),
            "biogpt" | "lm-biogpt" => fp(&[
                "lm-biogpt",
                &format!("{:?}", self.cfg.gpt_arch),
                &format!("{:?}", self.cfg.gpt_pretrain),
                &self.cfg.gpt_pretrain_cap.to_string(),
                &self.wordpiece_ckpt_key(),
                &ckpt::domain_fp(&self.cfg),
            ]),
            _ => return None,
        })
    }

    /// Token-level embedding model by table name.
    pub fn embedding(&self, name: &str) -> &dyn EmbeddingModel {
        match name {
            "random" => self.random(),
            "glove" => self.glove(),
            "w2v-chem" => self.w2v_chem(),
            "glove-chem" => self.glove_chem(),
            "biowordvec" => self.biowordvec(),
            other => panic!("unknown embedding model {other}"),
        }
    }

    /// The WordPiece vocabulary (trained on entity names, relation phrases
    /// and the domain corpus).
    pub fn wordpiece(&self) -> &WordPiece {
        self.wordpiece.get_or_init(|| {
            ckpt::cached(
                self.ckpt.as_deref(),
                "wordpiece",
                &self.wordpiece_ckpt_key(),
                WordPiece::from_bytes,
                WordPiece::to_bytes,
                || {
                    let mut counts: HashMap<String, u64> = HashMap::new();
                    let tk = ChemTokenizer::new();
                    for e in self.ontology().entities() {
                        for t in tk.tokenize(&e.name) {
                            *counts.entry(t).or_insert(0) += 1;
                        }
                    }
                    for r in kcb_ontology::Relation::ALL {
                        for t in tk.tokenize(r.phrase()) {
                            *counts.entry(t).or_insert(0) += 500;
                        }
                    }
                    for sent in self.domain_sentences().iter().take(2_000) {
                        for t in sent {
                            *counts.entry(t.clone()).or_insert(0) += 1;
                        }
                    }
                    for w in ["true", "false", "classify", "classification", "triple", "know"] {
                        *counts.entry(w.to_string()).or_insert(0) += 500;
                    }
                    WordPieceTrainer { target_vocab: self.cfg.wp_vocab, min_pair_count: 2 }
                        .train(&counts)
                },
            )
        })
    }

    fn encode_corpus_for_lm(&self, cap: usize) -> Vec<Vec<u32>> {
        let wp = self.wordpiece();
        self.domain_sentences()
            .iter()
            .take(cap)
            .map(|sent| wp.encode_words(sent.iter().map(String::as_str)))
            .filter(|ids| ids.len() >= 3)
            .collect()
    }

    /// A trained+evaluated random-forest run on a task's canonical split
    /// for a *token-embedding* model (anything in [`EMBEDDING_NAMES`]),
    /// cached by `(task, model, adaptation)`. Safe from any thread —
    /// scheduler warm cells call this concurrently. The `"pubmedbert"`
    /// model needs the driver-only BERT; use [`Lab::forest_run`] for it.
    pub fn forest_run(
        &self,
        task: TaskKind,
        model: &str,
        adapt_kind: &str,
    ) -> Arc<ForestRun> {
        assert_ne!(
            model, "pubmedbert",
            "pubmedbert forests need the driver-only BERT; call Lab::forest_run"
        );
        let key = format!("{}|{model}|{adapt_kind}", task.number());
        let s = slot(&self.forest_runs, &key);
        if let Some(run) = s.get() {
            self.forest_hits.fetch_add(1, Ordering::Relaxed);
            return run.clone();
        }
        s.get_or_init(|| {
            self.forest_misses.fetch_add(1, Ordering::Relaxed);
            let split = self.split(task);
            let train = &split.train[..split.train.len().min(self.cfg.train_cap)];
            let adaptation = self.adaptation(adapt_kind, model);
            let enc = crate::compose::TokenAvgEncoder::new(self.embedding(model), adaptation);
            Arc::new(crate::paradigm::ml::run_forest_cached(
                self.ontology(),
                train,
                &split.test,
                &enc,
                &self.cfg.rf,
                Some(&self.encodings),
            ))
        })
        .clone()
    }

    /// Slot accessor used by [`Lab::forest_run`] for the BERT-backed model
    /// so both paths share one cache (and its hit/miss counters).
    fn forest_slot(&self, key: &str) -> Arc<OnceLock<Arc<ForestRun>>> {
        slot(&self.forest_runs, key)
    }

    /// A trained+evaluated LSTM run on Task 1's canonical split (Table A6),
    /// cached per embedding model. Uses the table's historical caps: train
    /// capped at `train_cap / 4`, test at 1,500 rows, naive adaptation.
    pub fn lstm_run(&self, model: &str) -> Arc<LstmRun> {
        let s = slot(&self.lstm_runs, model);
        s.get_or_init(|| {
            let split = self.split(TaskKind::RandomNegatives);
            let cap = (self.cfg.train_cap / 4).max(200).min(split.train.len());
            let test_cap = split.test.len().min(1_500);
            let adaptation = self.adaptation("naive", model);
            Arc::new(run_lstm(
                self.ontology(),
                &split.train[..cap],
                &split.test[..test_cap],
                self.embedding(model),
                &adaptation,
                &self.cfg.lstm,
            ))
        })
        .clone()
    }

    /// The adaptation of the given kind (`"none"` / `"naive"` /
    /// `"task-oriented"`) for one embedding model. Task-oriented stop
    /// words (Algorithm 2) are computed once per model and cached;
    /// concurrent callers for the same model block on one computation.
    pub fn adaptation(&self, kind: &str, model_name: &str) -> Adaptation {
        match kind {
            "none" => Adaptation::None,
            "naive" => Adaptation::Naive,
            "task-oriented" => {
                let s = slot(&self.stopwords, model_name);
                let stop = s.get_or_init(|| {
                    let positives = positive_triples(self.ontology(), TaskKind::RandomNegatives);
                    task_oriented_stopwords(
                        self.ontology(),
                        &positives,
                        self.embedding(model_name),
                        &self.cfg.task_oriented,
                    )
                });
                Adaptation::TaskOriented(stop.clone())
            }
            other => panic!("unknown adaptation {other}"),
        }
    }
}

/// Lazily-built, cached experiment environment: an [`Arc`]-shared
/// [`Shared`] core plus the two driver-thread-only language models.
///
/// Holding the core behind an `Arc` lets long-lived consumers (the
/// `kcb-serve` snapshot, request worker threads) keep the providers alive
/// independently of the `Lab` that built them — [`Lab::shared_arc`] hands
/// out owned handles while [`Lab::shared`] and the `Deref` impl keep the
/// borrow-based call sites unchanged.
pub struct Lab {
    shared: Arc<Shared>,
    bert: OnceCell<(MiniBert, Vec<Matrix>)>,
    biogpt: OnceCell<BioGptMini>,
}

impl std::ops::Deref for Lab {
    type Target = Shared;

    fn deref(&self) -> &Shared {
        &self.shared
    }
}

impl Lab {
    /// Creates an environment (nothing is built yet).
    pub fn new(cfg: LabConfig) -> Self {
        Self::build(cfg, None)
    }

    /// Creates an environment backed by a persistent checkpoint store:
    /// every provider loads from the store when a matching checkpoint
    /// exists and trains (then saves) otherwise, and previously computed
    /// derived results (memo scores/rows, forest and LSTM runs) are
    /// replayed from the store's derived cache. Call
    /// [`Shared::save_checkpoints`] after a run to persist the union.
    pub fn with_checkpoints(cfg: LabConfig, store: Arc<CkptStore>) -> Self {
        Self::build(cfg, Some(store))
    }

    fn build(cfg: LabConfig, store: Option<Arc<CkptStore>>) -> Self {
        let shared = Arc::new(Shared::new(cfg, store));
        shared.load_derived();
        Self { shared, bert: OnceCell::new(), biogpt: OnceCell::new() }
    }

    /// The thread-safe core, for handing to scheduler worker threads.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// An owned handle on the thread-safe core. Snapshots and serving
    /// threads hold this so the providers outlive the `Lab` borrow.
    pub fn shared_arc(&self) -> Arc<Shared> {
        Arc::clone(&self.shared)
    }

    /// Content key of the mini-BERT checkpoint. Forces the (cheap,
    /// checkpointed) WordPiece vocabulary: its size fixes the architecture.
    fn bert_ckpt_key(&self) -> (TransformerConfig, String) {
        let arch = TransformerConfig {
            vocab_size: self.wordpiece().vocab_size(),
            ..self.shared.cfg.bert_arch
        };
        let key = ckpt::digest_key(
            ckpt::SCHEMA_BERT,
            &[
                &format!("{arch:?}"),
                &format!("{:?}", self.shared.cfg.bert_pretrain),
                &self.shared.cfg.bert_pretrain_cap.to_string(),
                &self.shared.wordpiece_ckpt_key(),
                &ckpt::domain_fp(&self.shared.cfg),
            ],
        );
        (arch, key)
    }

    /// Content key of the BioGPT-mini checkpoint.
    fn biogpt_ckpt_key(&self) -> (TransformerConfig, String) {
        let arch = TransformerConfig {
            vocab_size: self.wordpiece().vocab_size(),
            ..self.shared.cfg.gpt_arch
        };
        let key = ckpt::digest_key(
            ckpt::SCHEMA_BIOGPT,
            &[
                &format!("{arch:?}"),
                &format!("{:?}", self.shared.cfg.gpt_pretrain),
                &self.shared.cfg.gpt_pretrain_cap.to_string(),
                &self.shared.wordpiece_ckpt_key(),
                &ckpt::domain_fp(&self.shared.cfg),
            ],
        );
        (arch, key)
    }

    /// Freshness probe covering the driver-thread LM providers as well as
    /// everything [`Shared::provider_fresh`] knows. The LM keys need the
    /// WordPiece vocabulary size, so probing them materialises that one
    /// (cheap, itself checkpointed) dependency.
    pub fn provider_fresh(&self, name: &str) -> bool {
        if self.shared.checkpoint_store().is_none() {
            return false;
        }
        match name {
            "lm-bert" => {
                let (_, key) = self.bert_ckpt_key();
                self.shared.checkpoint_store().is_some_and(|s| s.is_fresh(name, &key))
            }
            "lm-biogpt" => {
                let (_, key) = self.biogpt_ckpt_key();
                self.shared.checkpoint_store().is_some_and(|s| s.is_fresh(name, &key))
            }
            other => self.shared.provider_fresh(other),
        }
    }

    /// The MLM-pre-trained mini-BERT plus its pre-trained weight snapshot.
    /// Fine-tuning runs mutate the model in place; call
    /// [`kcb_lm::MiniBert::restore`] with the snapshot to reset it.
    /// Driver-thread only (the model is `!Send`).
    pub fn bert(&self) -> &(MiniBert, Vec<Matrix>) {
        self.bert.get_or_init(|| {
            let (arch, key) = self.bert_ckpt_key();
            let bert = MiniBert::new(MiniBertConfig { arch, mask_prob: 0.15 });
            // Freshly initialised weights double as the shape reference a
            // cached snapshot must match to be usable.
            let expect = bert.snapshot();
            let snapshot = ckpt::cached_raw(
                self.shared.ckpt.as_deref(),
                "lm-bert",
                &key,
                |meta, raw| decode_snapshot_raw(meta, raw, &expect),
                |b| decode_snapshot(b, &expect),
                |w| {
                    let (meta, parts) = kcb_lm::ckpt::weights_raw_parts(w);
                    (meta, parts)
                },
                || {
                    let corpus = self.encode_corpus_for_lm(self.shared.cfg.bert_pretrain_cap);
                    bert.pretrain_mlm(&corpus, &self.shared.cfg.bert_pretrain);
                    bert.snapshot()
                },
            );
            // Both the trained and the loaded path land here, so cold and
            // warm labs hold byte-identical models.
            bert.restore(&snapshot);
            (bert, snapshot)
        })
    }

    /// The domain-pre-trained BioGPT-mini.
    ///
    /// Besides the literature corpus, a slice of classification-transcript
    /// text is mixed into pre-training — the mini-scale analogue of real
    /// BioGPT having seen statement/verdict patterns in 15M abstracts.
    /// Without it a model this small never emits `true`/`false` at all;
    /// with it, it answers at near-chance with the order bias the paper
    /// observed, which is exactly the behaviour Table 5 reports.
    pub fn biogpt(&self) -> &BioGptMini {
        self.biogpt.get_or_init(|| {
            let arch = TransformerConfig {
                vocab_size: self.wordpiece().vocab_size(),
                ..self.shared.cfg.gpt_arch
            };
            let key = ckpt::digest_key(
                ckpt::SCHEMA_BIOGPT,
                &[
                    &format!("{arch:?}"),
                    &format!("{:?}", self.shared.cfg.gpt_pretrain),
                    &self.shared.cfg.gpt_pretrain_cap.to_string(),
                    &self.shared.wordpiece_ckpt_key(),
                    &ckpt::domain_fp(&self.shared.cfg),
                ],
            );
            let gpt = MiniGpt::new(MiniGptConfig { arch });
            let expect = gpt.snapshot();
            let snapshot = ckpt::cached_raw(
                self.shared.ckpt.as_deref(),
                "lm-biogpt",
                &key,
                |meta, raw| decode_snapshot_raw(meta, raw, &expect),
                |b| decode_snapshot(b, &expect),
                |w| {
                    let (meta, parts) = kcb_lm::ckpt::weights_raw_parts(w);
                    (meta, parts)
                },
                || {
                    let mut corpus = self.encode_corpus_for_lm(self.shared.cfg.gpt_pretrain_cap);
                    let o = self.ontology();
                    let wp = self.wordpiece();
                    let tk = ChemTokenizer::new();
                    // Transcript sources must not overlap any task's test
                    // queries: positives are shared across tasks, so a
                    // task-2/3 test triple can sit in task-1's train split.
                    let mut test_keys: HashSet<(u32, u8, u32)> = HashSet::new();
                    for task in crate::task::TaskKind::ALL {
                        test_keys.extend(self.split(task).test.iter().map(|e| e.triple.key()));
                    }
                    let train: Vec<crate::task::LabeledTriple> = self
                        .split(crate::task::TaskKind::RandomNegatives)
                        .train
                        .iter()
                        .copied()
                        .filter(|e| !test_keys.contains(&e.triple.key()))
                        .collect();
                    let mut rng = Rng::seed_stream(self.shared.cfg.seed, 0xb109);
                    let n_transcripts = (corpus.len() * 2).max(400);
                    for _ in 0..n_transcripts {
                        // "triple <text> classification <verdict>" pairs —
                        // the ChemTokenizer-normalised surface of the
                        // Table 1 prompt.
                        let mut words: Vec<String> = Vec::new();
                        for _ in 0..2 {
                            let e = train[rng.below(train.len())];
                            words.push("triple".to_string());
                            words.extend(tk.tokenize(&o.render(e.triple)));
                            words.push("classification".to_string());
                            words.push(if e.label { "true" } else { "false" }.to_string());
                        }
                        corpus.push(wp.encode_words(words.iter().map(String::as_str)));
                    }
                    gpt.pretrain_clm(&corpus, &self.shared.cfg.gpt_pretrain);
                    gpt.snapshot()
                },
            );
            gpt.restore(&snapshot);
            BioGptMini::new(gpt, self.wordpiece().clone())
        })
    }

    /// A trained+evaluated random-forest run on a task's canonical split,
    /// cached by `(task, model, adaptation)`. `model` is an embedding name
    /// from [`EMBEDDING_NAMES`] or `"pubmedbert"` (frozen mini-BERT `[CLS]`
    /// embeddings). Training rows are capped at `train_cap`.
    pub fn forest_run(&self, task: TaskKind, model: &str, adapt_kind: &str) -> Arc<ForestRun> {
        if model != "pubmedbert" {
            return self.shared.forest_run(task, model, adapt_kind);
        }
        let key = format!("{}|{model}|{adapt_kind}", task.number());
        let s = self.shared.forest_slot(&key);
        if let Some(run) = s.get() {
            self.shared.forest_hits.fetch_add(1, Ordering::Relaxed);
            return run.clone();
        }
        s.get_or_init(|| {
            self.shared.forest_misses.fetch_add(1, Ordering::Relaxed);
            let split = self.split(task);
            let train = &split.train[..split.train.len().min(self.shared.cfg.train_cap)];
            let (bert, snapshot) = self.bert();
            bert.restore(snapshot); // guarantee the pre-trained state
            let enc = crate::compose::BertClsEncoder::new(bert, self.wordpiece());
            Arc::new(crate::paradigm::ml::run_forest_cached(
                self.ontology(),
                train,
                &split.test,
                &enc,
                &self.shared.cfg.rf,
                Some(&self.shared.encodings),
            ))
        })
        .clone()
    }
}

/// Decodes an LM weight snapshot, rejecting one whose parameter shapes
/// don't match the freshly initialised model — a stale snapshot must fall
/// back to retraining, never panic inside `restore`.
fn decode_snapshot(bytes: &[u8], expect: &[Matrix]) -> kcb_util::Result<Vec<Matrix>> {
    check_snapshot_shapes(kcb_lm::ckpt::weights_from_bytes(bytes)?, expect)
}

/// Raw-container counterpart of [`decode_snapshot`]: weights borrow the
/// mapped payload zero-copy, with the same shape gate.
fn decode_snapshot_raw(
    meta: &[u8],
    raw: &kcb_util::mmap::RawSection,
    expect: &[Matrix],
) -> kcb_util::Result<Vec<Matrix>> {
    check_snapshot_shapes(kcb_lm::ckpt::weights_from_raw(meta, raw)?, expect)
}

fn check_snapshot_shapes(w: Vec<Matrix>, expect: &[Matrix]) -> kcb_util::Result<Vec<Matrix>> {
    let ok = w.len() == expect.len()
        && w.iter().zip(expect).all(|(a, b)| a.rows() == b.rows() && a.cols() == b.cols());
    if !ok {
        return Err(kcb_util::Error::parse(
            "lm snapshot",
            "parameter shapes do not match the architecture".to_string(),
        ));
    }
    Ok(w)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lab_builds_every_component_at_tiny_scale() {
        let lab = Lab::new(LabConfig::tiny());
        assert!(lab.ontology().n_triples() > 500);
        assert!(lab.task(TaskKind::RandomNegatives).len() > 1000);
        assert!(!lab.split(TaskKind::FlippedNegatives).test.is_empty());
        assert!(lab.domain_sentences().len() > 100);
        assert!(lab.w2v_chem().vocab_size() > 50);
        assert!(lab.glove().vocab_size() > 50);
        assert!(lab.glove_chem().vocab_size() >= lab.glove().vocab_size());
        assert!(lab.biowordvec().vocab_size() > 50);
        assert!(lab.wordpiece().vocab_size() > 100);
    }

    #[test]
    fn lab_components_are_cached() {
        let lab = Lab::new(LabConfig::tiny());
        let a = lab.ontology() as *const _;
        let b = lab.ontology() as *const _;
        assert_eq!(a, b, "ontology should be built once");
        let w1 = lab.w2v_chem() as *const _;
        let w2 = lab.w2v_chem() as *const _;
        assert_eq!(w1, w2);
    }

    #[test]
    fn shared_core_is_send_and_sync() {
        fn assert_sync<T: Send + Sync>() {}
        assert_sync::<Shared>();
    }

    #[test]
    fn adaptations_resolve() {
        let lab = Lab::new(LabConfig::tiny());
        assert!(matches!(lab.adaptation("none", "random"), Adaptation::None));
        assert!(matches!(lab.adaptation("naive", "glove"), Adaptation::Naive));
        let a = lab.adaptation("task-oriented", "w2v-chem");
        let b = lab.adaptation("task-oriented", "w2v-chem"); // cached
        match (&a, &b) {
            (Adaptation::TaskOriented(x), Adaptation::TaskOriented(y)) => assert_eq!(x, y),
            _ => panic!("expected task-oriented adaptations"),
        }
    }

    #[test]
    fn memo_score_computes_once_per_key() {
        let lab = Lab::new(LabConfig::tiny());
        let a = lab.memo_score("k".to_string(), || 0.25);
        let b = lab.memo_score("k".to_string(), || panic!("must not recompute"));
        assert_eq!(a, 0.25);
        assert_eq!(b, 0.25);
        let c = lab.memo_score("other".to_string(), || 0.5);
        assert_eq!(c, 0.5);
        let stats = lab.cache_stats();
        assert_eq!(stats.memo_misses, 2);
        assert!(stats.memo_hits >= 1);
    }

    #[test]
    fn memo_score_is_safe_under_concurrent_same_key_calls() {
        let lab = Lab::new(LabConfig::tiny());
        let shared = lab.shared();
        let values: Vec<f64> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(|| {
                        shared.memo_score("concurrent".to_string(), || {
                            std::thread::sleep(std::time::Duration::from_millis(5));
                            1.5
                        })
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert!(values.iter().all(|&v| v == 1.5));
        assert_eq!(lab.cache_stats().memo_misses, 1, "one compute for 4 same-key callers");
    }

    fn temp_ckpt_dir(name: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("kcb-lab-ckpt-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn warm_lab_replays_every_provider_bit_identically() {
        let dir = temp_ckpt_dir("warm");
        let cold = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        let baseline = Lab::new(LabConfig::tiny());
        // A store-backed cold lab trains exactly what a storeless lab does.
        assert_eq!(
            cold.w2v_chem().vectors().as_slice(),
            baseline.w2v_chem().vectors().as_slice()
        );
        cold.glove();
        cold.glove_chem();
        cold.biowordvec();
        cold.wordpiece();
        let (_, cold_snapshot) = cold.bert();
        let stats = cold.cache_stats();
        assert_eq!(stats.ckpt_hits, 0, "first run must train everything");
        assert!(stats.ckpt_misses >= 6, "derived + 4 embeddings + wordpiece + bert missed");

        let warm = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        assert_eq!(
            warm.w2v_chem().vectors().as_slice(),
            cold.w2v_chem().vectors().as_slice()
        );
        assert_eq!(warm.glove().vectors().as_slice(), cold.glove().vectors().as_slice());
        assert_eq!(
            warm.glove_chem().vectors().as_slice(),
            cold.glove_chem().vectors().as_slice()
        );
        assert_eq!(warm.biowordvec().vocab_size(), cold.biowordvec().vocab_size());
        let (wp_w, wp_c) = (warm.wordpiece(), cold.wordpiece());
        assert_eq!(wp_w.vocab_size(), wp_c.vocab_size());
        assert!((0..wp_w.vocab_size() as u32).all(|i| wp_w.piece(i) == wp_c.piece(i)));
        let (_, warm_snapshot) = warm.bert();
        assert_eq!(warm_snapshot.len(), cold_snapshot.len());
        for (a, b) in warm_snapshot.iter().zip(cold_snapshot) {
            assert_eq!(a.as_slice(), b.as_slice(), "bert weights must replay bit-identically");
        }
        let stats = warm.cache_stats();
        assert_eq!(stats.ckpt_misses, 1, "only the derived cache missed (none saved yet)");
        assert_eq!(stats.ckpt_hits, 6, "4 embeddings + wordpiece + bert served from disk");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn derived_cache_replays_memo_and_forest_results() {
        let dir = temp_ckpt_dir("derived");
        let cold = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        let score = cold.memo_score("cell".to_string(), || 0.75);
        let row = cold.memo_vec("row".to_string(), || vec![1.0, 2.0]);
        let run = cold.forest_run(TaskKind::RandomNegatives, "random", "naive");
        let lstm = cold.lstm_run("random");
        cold.save_checkpoints();

        let warm = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        assert_eq!(warm.memo_score("cell".to_string(), || panic!("replayed")), score);
        assert_eq!(*warm.memo_vec("row".to_string(), || panic!("replayed")), *row);
        let warm_run = warm.forest_run(TaskKind::RandomNegatives, "random", "naive");
        assert_eq!(warm_run.metrics.f1, run.metrics.f1);
        assert_eq!(warm_run.test_probs, run.test_probs);
        assert_eq!(warm_run.importances, run.importances);
        let probe = vec![0.25f32; run.importances.len()];
        assert_eq!(
            warm_run.forest.predict_proba(&probe).to_bits(),
            run.forest.predict_proba(&probe).to_bits(),
            "the replayed forest must predict bit-identically"
        );
        assert_eq!(warm.lstm_run("random").metrics.accuracy, lstm.metrics.accuracy);
        let stats = warm.cache_stats();
        assert!(stats.ckpt_hits >= 1, "derived cache must hit");
        assert!(
            warm.cache_stats().forest_hits >= 1,
            "prefilled forest slot must count as a hit"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_provider_checkpoint_falls_back_to_training() {
        let dir = temp_ckpt_dir("corrupt");
        let cold = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        let reference = cold.w2v_chem().vectors().as_slice().to_vec();
        // Truncate the real w2v checkpoint mid-file.
        let file = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .find(|p| {
                p.file_name().and_then(|n| n.to_str()).is_some_and(|n| {
                    n.starts_with("embed-w2v-chem-")
                })
            })
            .expect("w2v checkpoint written");
        let bytes = std::fs::read(&file).unwrap();
        std::fs::write(&file, &bytes[..bytes.len() / 2]).unwrap();
        let warm = Lab::with_checkpoints(LabConfig::tiny(), Arc::new(CkptStore::open(&dir)));
        assert_eq!(
            warm.w2v_chem().vectors().as_slice(),
            reference.as_slice(),
            "fallback retraining must reproduce the same table"
        );
        // The lookup recorded a miss, and the rewrite repaired the file.
        let w2v_events: Vec<_> = warm
            .checkpoint_store()
            .unwrap()
            .events()
            .into_iter()
            .filter(|e| e.provider == "embed-w2v-chem")
            .collect();
        assert_eq!(w2v_events.len(), 1);
        assert!(!w2v_events[0].hit);
        assert!(std::fs::read(&file).unwrap().len() > bytes.len() / 2, "repaired on retrain");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bert_and_biogpt_pretrain_at_tiny_scale() {
        let lab = Lab::new(LabConfig::tiny());
        let (bert, snapshot) = lab.bert();
        assert!(!snapshot.is_empty());
        let p = bert.predict_proba(&[kcb_text::wordpiece::special::CLS, 10, 11]);
        assert!((0.0..=1.0).contains(&p));
        let gpt = lab.biogpt();
        let mut rng = kcb_util::Rng::seed(1);
        let ids = gpt.encode("acid is a compound");
        assert!(!ids.is_empty());
        let out = gpt.gpt_model().generate(&ids, 3, 0.0, &mut rng);
        assert_eq!(out.len(), 3);
    }
}
