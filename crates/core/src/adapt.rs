//! Hypothesis-driven embedding adaptation (§2.7).
//!
//! The paper's counter-intuitive finding — random embeddings beating
//! semantic ones — was traced to high-frequency, semantically-similar
//! short tokens (locants, stereo-descriptors) pulling entity
//! representations together. Two mitigations are implemented:
//!
//! * [`Adaptation::Naive`] — drop tokens shorter than three characters
//!   (falling back to all tokens when nothing survives);
//! * [`Adaptation::TaskOriented`] — Algorithm 2: cluster the top-quantile
//!   frequent tokens by embedding proximity (DBSCAN), then flag every
//!   cluster whose removal significantly shifts the dispersion of entity
//!   representations (Welch t-test over repeated subsamples).

use kcb_embed::{embed_or_random, EmbeddingModel};
use kcb_ml::cluster::{clusters_from_labels, dbscan, Metric};
use kcb_ml::linalg::Matrix;
use kcb_ml::stats::welch_t_test;
use kcb_ontology::{EntityId, Ontology, Triple};
use kcb_text::freq::TokenFrequency;
use kcb_text::ChemTokenizer;
use kcb_util::Rng;
use std::collections::{HashMap, HashSet};

/// A token-selection policy applied after tokenization in Algorithm 1.
#[derive(Debug, Clone)]
pub enum Adaptation {
    /// Keep every token.
    None,
    /// Keep tokens of three or more characters; keep everything when no
    /// token qualifies (§2.7).
    Naive,
    /// Drop the stop words identified by Algorithm 2.
    TaskOriented(HashSet<String>),
}

impl Adaptation {
    /// Display name used in report tables.
    pub fn name(&self) -> &'static str {
        match self {
            Adaptation::None => "no adaptation",
            Adaptation::Naive => "naive adaptation",
            Adaptation::TaskOriented(_) => "task-oriented adaptation",
        }
    }

    /// Whether a single token survives the filter.
    pub fn keeps(&self, token: &str) -> bool {
        match self {
            Adaptation::None => true,
            Adaptation::Naive => token.chars().count() >= 3,
            Adaptation::TaskOriented(stop) => !stop.contains(token),
        }
    }

    /// Filters a token list, falling back to the full list when the filter
    /// would remove everything.
    pub fn apply<'a>(&self, tokens: &'a [String]) -> Vec<&'a str> {
        let kept: Vec<&str> =
            tokens.iter().map(String::as_str).filter(|t| self.keeps(t)).collect();
        if kept.is_empty() {
            tokens.iter().map(String::as_str).collect()
        } else {
            kept
        }
    }
}

/// Parameters of Algorithm 2.
#[derive(Debug, Clone, Copy)]
pub struct TaskOrientedConfig {
    /// Frequency quantile of tokens considered ("top 25 %").
    pub quantile: f64,
    /// DBSCAN cosine-distance radius.
    pub eps: f32,
    /// DBSCAN density threshold.
    pub min_pts: usize,
    /// Entities sampled per iteration (paper: 5000).
    pub n_entities: usize,
    /// Iterations (paper: 10).
    pub iterations: usize,
    /// Pairwise distances sampled per dispersion estimate.
    pub n_pairs: usize,
    /// Significance threshold for the t-test.
    pub p_threshold: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for TaskOrientedConfig {
    fn default() -> Self {
        Self {
            quantile: 0.25,
            eps: 0.25,
            min_pts: 3,
            n_entities: 5_000,
            iterations: 10,
            n_pairs: 1_500,
            p_threshold: 0.05,
            seed: 42,
        }
    }
}

/// Algorithm 2: embedding-specific identification of less semantically
/// meaningful tokens. Returns the stop-word set for
/// [`Adaptation::TaskOriented`].
pub fn task_oriented_stopwords(
    o: &Ontology,
    positives: &[Triple],
    model: &dyn EmbeddingModel,
    cfg: &TaskOrientedConfig,
) -> HashSet<String> {
    let tk = ChemTokenizer::new();
    let tf = TokenFrequency::compute(o, positives, &tk);
    let frequent: Vec<String> = tf.top_quantile(cfg.quantile);
    if frequent.len() < cfg.min_pts {
        return HashSet::new();
    }

    // Embed the frequent tokens and cluster them.
    let dim = model.dim();
    let mut buf = vec![0.0f32; dim];
    let rows: Vec<Vec<f32>> = frequent
        .iter()
        .map(|t| {
            embed_or_random(model, t, &mut buf);
            buf.clone()
        })
        .collect();
    let points = Matrix::from_rows(rows);
    let labels = dbscan(&points, cfg.eps, cfg.min_pts, Metric::Cosine);
    let clusters = clusters_from_labels(&labels);
    if clusters.is_empty() {
        return HashSet::new();
    }

    // Unique head/tail entities of the positive triples, with tokenised
    // names and cached token vectors.
    let mut entity_set: HashSet<EntityId> = HashSet::new();
    for t in positives {
        entity_set.insert(t.subject);
        entity_set.insert(t.object);
    }
    let entities: Vec<EntityId> = {
        let mut v: Vec<EntityId> = entity_set.into_iter().collect();
        v.sort_unstable();
        v
    };
    let mut token_vec: HashMap<String, Vec<f32>> = HashMap::new();
    let entity_tokens: Vec<Vec<String>> = entities
        .iter()
        .map(|&e| {
            let toks = tk.tokenize(o.name(e));
            for t in &toks {
                token_vec.entry(t.clone()).or_insert_with(|| {
                    embed_or_random(model, t, &mut buf);
                    buf.clone()
                });
            }
            toks
        })
        .collect();

    let cluster_tokens: Vec<HashSet<&str>> = clusters
        .iter()
        .map(|c| c.iter().map(|&i| frequent[i].as_str()).collect())
        .collect();

    // Dispersion samples per cluster, with and without its tokens.
    let mut rng = Rng::seed_stream(cfg.seed, 0xa160);
    let mut d_with: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.iterations); clusters.len()];
    let mut d_without: Vec<Vec<f64>> = vec![Vec::with_capacity(cfg.iterations); clusters.len()];

    for _iter in 0..cfg.iterations {
        let n = cfg.n_entities.min(entities.len());
        let sample = rng.sample_indices(entities.len(), n);
        // Centroids with all tokens (shared across clusters).
        let m1: Vec<Vec<f32>> = sample
            .iter()
            .map(|&ei| centroid(&entity_tokens[ei], &token_vec, None, dim))
            .collect();
        let base_var = distance_variance(&m1, cfg.n_pairs, &mut rng);
        for (ci, ctoks) in cluster_tokens.iter().enumerate() {
            let m2: Vec<Vec<f32>> = sample
                .iter()
                .map(|&ei| centroid(&entity_tokens[ei], &token_vec, Some(ctoks), dim))
                .collect();
            d_with[ci].push(base_var);
            d_without[ci].push(distance_variance(&m2, cfg.n_pairs, &mut rng));
        }
    }

    let mut stop = HashSet::new();
    for (ci, ctoks) in cluster_tokens.iter().enumerate() {
        if let Some(t) = welch_t_test(&d_with[ci], &d_without[ci]) {
            if t.p_value <= cfg.p_threshold {
                stop.extend(ctoks.iter().map(|s| s.to_string()));
            }
        }
    }
    stop
}

/// Mean of an entity's token vectors, optionally excluding a token set;
/// falls back to the unfiltered centroid when exclusion empties the name.
fn centroid(
    tokens: &[String],
    token_vec: &HashMap<String, Vec<f32>>,
    exclude: Option<&HashSet<&str>>,
    dim: usize,
) -> Vec<f32> {
    let mut acc = vec![0.0f32; dim];
    let mut n = 0usize;
    for t in tokens {
        if let Some(ex) = exclude {
            if ex.contains(t.as_str()) {
                continue;
            }
        }
        if let Some(v) = token_vec.get(t) {
            kcb_ml::linalg::axpy(1.0, v, &mut acc);
            n += 1;
        }
    }
    if n == 0 {
        return centroid(tokens, token_vec, None, dim);
    }
    let inv = 1.0 / n as f32;
    for a in &mut acc {
        *a *= inv;
    }
    acc
}

/// Variance of sampled pairwise euclidean distances among representations.
fn distance_variance(points: &[Vec<f32>], n_pairs: usize, rng: &mut Rng) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let mut dists = Vec::with_capacity(n_pairs);
    for _ in 0..n_pairs {
        let i = rng.below(points.len());
        let mut j = rng.below(points.len());
        if i == j {
            j = (j + 1) % points.len();
        }
        dists.push(f64::from(kcb_ml::linalg::euclidean(&points[i], &points[j])));
    }
    kcb_ml::stats::variance(&dists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_embed::Lookup;

    #[test]
    fn naive_filters_short_tokens_with_fallback() {
        let a = Adaptation::Naive;
        assert!(a.keeps("methyl"));
        assert!(!a.keeps("2s"));
        assert!(!a.keeps("yl"));
        let toks: Vec<String> = ["2", "6r", "methyl"].iter().map(|s| s.to_string()).collect();
        assert_eq!(a.apply(&toks), vec!["methyl"]);
        let all_short: Vec<String> = ["2", "6r"].iter().map(|s| s.to_string()).collect();
        assert_eq!(a.apply(&all_short), vec!["2", "6r"], "fallback keeps everything");
    }

    #[test]
    fn none_keeps_everything() {
        let toks: Vec<String> = ["1", "a"].iter().map(|s| s.to_string()).collect();
        assert_eq!(Adaptation::None.apply(&toks).len(), 2);
    }

    #[test]
    fn task_oriented_uses_stop_list() {
        let stop: HashSet<String> = ["1".to_string(), "2s".to_string()].into_iter().collect();
        let a = Adaptation::TaskOriented(stop);
        assert!(!a.keeps("1"));
        assert!(a.keeps("methyl"));
        assert_eq!(a.name(), "task-oriented adaptation");
    }

    /// An embedding model where all digit-ish tokens share one vector
    /// direction (the pathological similarity the hypothesis targets) and
    /// content tokens are deterministic random.
    struct DigitsCollapse;
    impl EmbeddingModel for DigitsCollapse {
        fn name(&self) -> &str {
            "digits-collapse"
        }
        fn dim(&self) -> usize {
            16
        }
        fn vocab_size(&self) -> usize {
            usize::MAX
        }
        fn embed_into(&self, token: &str, out: &mut [f32]) -> Lookup {
            if token.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                // Near-identical vectors for all locant-like tokens.
                out.fill(0.0);
                out[0] = 1.0;
                out[1] = (token.len() as f32) * 1e-3;
            } else {
                kcb_embed::model::random_vector_for(token, out);
            }
            Lookup::InVocab
        }
    }

    #[test]
    fn algorithm_2_flags_collapsed_frequent_tokens() {
        use kcb_ontology::{SyntheticConfig, SyntheticGenerator};
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 44 })
            .unwrap()
            .generate();
        let positives: Vec<Triple> = o.triples().to_vec();
        let cfg = TaskOrientedConfig {
            n_entities: 400,
            iterations: 6,
            n_pairs: 400,
            ..TaskOrientedConfig::default()
        };
        let stop = task_oriented_stopwords(&o, &positives, &DigitsCollapse, &cfg);
        assert!(!stop.is_empty(), "should flag at least one cluster");
        let digit_like = stop
            .iter()
            .filter(|t| t.chars().next().is_some_and(|c| c.is_ascii_digit()))
            .count();
        assert!(
            digit_like * 2 > stop.len(),
            "flagged tokens should be dominated by locants: {stop:?}"
        );
    }

    #[test]
    fn algorithm_2_is_deterministic() {
        use kcb_ontology::{SyntheticConfig, SyntheticGenerator};
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.005, seed: 44 })
            .unwrap()
            .generate();
        let positives: Vec<Triple> = o.triples().to_vec();
        let cfg = TaskOrientedConfig {
            n_entities: 200,
            iterations: 4,
            n_pairs: 200,
            ..TaskOrientedConfig::default()
        };
        let a = task_oriented_stopwords(&o, &positives, &DigitsCollapse, &cfg);
        let b = task_oriented_stopwords(&o, &positives, &DigitsCollapse, &cfg);
        assert_eq!(a, b);
    }
}
