//! Persistent content-addressed checkpoint store.
//!
//! Training the lab's providers (embedding tables, the WordPiece
//! vocabulary, the two mini language models) and the derived experiment
//! results (forest runs, memoised cell scores) dominates a `repro` run's
//! wall clock, yet every one of them is a pure function of [`LabConfig`].
//! This module caches them on disk between runs, addressed by content key:
//!
//! * **Key derivation** — each artifact's key is the FNV-64 digest of its
//!   full determinant string: the provider's schema-version constant, the
//!   `Debug` rendering of every config that feeds its training, and the
//!   fingerprints of its input corpora (themselves config-derived). Change
//!   any input — seed, scale, trainer hyperparameter, corpus size — and the
//!   key changes, so a stale checkpoint is simply never *addressed*. Bump
//!   the provider's `SCHEMA_*` constant when the trainer's byte output or
//!   the on-disk format changes.
//! * **On-disk layout** — one file per artifact under the cache directory,
//!   named `<provider>-<key16>.ckpt`. Every file carries a container header
//!   (magic `KCBC`, container version, provider name, key, payload FNV-64
//!   checksum) followed by a provider-specific payload. Writes go through a
//!   temp file + rename, so a crashed run never leaves a half-written
//!   checkpoint under the final name.
//! * **Fallback** — a missing, truncated, corrupt or version-mismatched
//!   checkpoint is treated as a miss: one warning line on stderr, then the
//!   artifact retrains exactly as if the cache were empty. The store can
//!   slow a run down; it can never change results or make one fail.
//!
//! The contract mirrored by the CI warm-cache job: cache state (cold,
//! warm, corrupt) is a wall-clock knob, never a results knob — a warm run
//! must produce byte-identical artifact JSON to a cold one.

use kcb_util::bin::{Reader, Writer};
use kcb_util::mmap::{pack_f32s, Mmap, RawSection};
use kcb_util::{fnv1a, Result};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Schema version of the W2V-Chem embedding checkpoint.
pub const SCHEMA_W2V: u32 = 1;
/// Schema version of the generic-GloVe embedding checkpoint.
pub const SCHEMA_GLOVE: u32 = 1;
/// Schema version of the GloVe-Chem (warm-started) embedding checkpoint.
pub const SCHEMA_GLOVE_CHEM: u32 = 1;
/// Schema version of the BioWordVec (fastText) checkpoint.
pub const SCHEMA_BIOWORDVEC: u32 = 1;
/// Schema version of the WordPiece vocabulary checkpoint.
pub const SCHEMA_WORDPIECE: u32 = 1;
/// Schema version of the mini-BERT weight checkpoint.
pub const SCHEMA_BERT: u32 = 1;
/// Schema version of the BioGPT-mini weight checkpoint.
pub const SCHEMA_BIOGPT: u32 = 1;
/// Schema version of the derived-results cache.
pub const SCHEMA_DERIVED: u32 = 1;

/// Minimum file age before [`CkptStore::gc`] may evict: anything younger
/// may still be mid-write (tmp+rename from a concurrent `repro` sharing
/// the store) or just-read by a process that is about to use it.
pub const GC_GRACE: std::time::Duration = std::time::Duration::from_secs(60);

const CONTAINER_MAGIC: &[u8; 4] = b"KCBC";
const CONTAINER_VERSION: u32 = 1;
/// Container version with an aligned raw-payload section that can be
/// memory-mapped and borrowed in place. Layout (little-endian):
///
/// ```text
/// magic "KCBC" | version u32 = 2 | raw_off u64 | raw_len u64
/// provider str | key str | meta fnv-64 | meta_len u64 | meta bytes
/// stripe count u32 | stripe fnv-64 × count      (one per 4096-byte stripe)
/// zero padding to raw_off (64-byte aligned)
/// raw payload: packed little-endian f32 elements
/// ```
///
/// `raw_off`/`raw_len` sit at fixed offsets 8/16 so a mapped reader can
/// locate the payload before parsing anything variable-length. The metadata
/// checksum is verified eagerly (it is small); the payload is verified
/// lazily, stripe by stripe, on first access.
const CONTAINER_VERSION_RAW: u32 = 2;
/// Raw payloads start on a 64-byte boundary: enough for any f32 SIMD lane
/// width, and page-aligned mappings keep the property at runtime.
const RAW_ALIGN: usize = 64;

/// Derives an artifact's content key: FNV-64 over the schema version and
/// every determinant part, rendered as 16 hex chars (the file-name stem).
pub fn digest_key(schema: u32, parts: &[&str]) -> String {
    let mut joined = format!("v{schema}");
    for p in parts {
        joined.push('|');
        joined.push_str(p);
    }
    format!("{:016x}", fnv1a(joined.as_bytes()))
}

/// One checkpoint lookup or write, reported through `run_meta.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CkptEvent {
    /// Provider name (`embed-w2v-chem`, `lm-bert`, `derived`, ...).
    pub provider: String,
    /// Content key (16 hex chars).
    pub key: String,
    /// True when the artifact was served from disk.
    pub hit: bool,
    /// Payload size in bytes (0 for a miss without a file).
    pub bytes: u64,
}

/// A persistent content-addressed checkpoint store rooted at one directory.
pub struct CkptStore {
    dir: PathBuf,
    cold: bool,
    mmap: bool,
    hits: AtomicUsize,
    misses: AtomicUsize,
    events: Mutex<Vec<CkptEvent>>,
}

impl CkptStore {
    /// Opens (and lazily creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            cold: false,
            mmap: true,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Opens a store in *cold* mode: every lookup misses (forcing a fresh
    /// train) but results are still written, overwriting stale entries.
    pub fn cold(dir: impl Into<PathBuf>) -> Self {
        Self { cold: true, ..Self::open(dir) }
    }

    /// Enables or disables memory-mapped reads of raw-payload containers
    /// (the `--no-mmap` flag). With mapping off, raw containers are read
    /// into owned memory and decoded — byte-identical results, slower warm
    /// start.
    pub fn set_mmap(&mut self, on: bool) {
        self.mmap = on;
    }

    /// True when raw-payload containers will be memory-mapped.
    pub fn mmap_enabled(&self) -> bool {
        self.mmap
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True when opened with [`CkptStore::cold`].
    pub fn is_cold(&self) -> bool {
        self.cold
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Every lookup so far, in order.
    pub fn events(&self) -> Vec<CkptEvent> {
        self.events.lock().clone()
    }

    fn file_path(&self, provider: &str, key: &str) -> PathBuf {
        self.dir.join(format!("{provider}-{key}.ckpt"))
    }

    /// Marks a checkpoint as just-used by bumping its mtime. Plain reads
    /// (and mmap reads in particular) never touch mtime on their own, so
    /// without this a hot serving table would look idle to [`CkptStore::gc`]
    /// and could be evicted out from under a long-lived daemon. Best-effort:
    /// a read-only store directory simply keeps the old timestamp.
    fn touch(path: &Path) {
        let _ = std::fs::File::options()
            .append(true)
            .open(path)
            .and_then(|f| f.set_modified(std::time::SystemTime::now()));
    }

    fn record(&self, provider: &str, key: &str, hit: bool, bytes: u64) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            kcb_obs::counter("ckpt.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            kcb_obs::counter("ckpt.misses", 1);
        }
        self.events.lock().push(CkptEvent {
            provider: provider.to_string(),
            key: key.to_string(),
            hit,
            bytes,
        });
    }

    /// Tries to load and decode `provider`'s artifact under `key`. Returns
    /// `None` (recording a miss) when the file is absent, the store is
    /// cold, or the checkpoint is unusable for any reason — the latter with
    /// a single warning line.
    pub fn take<T>(
        &self,
        provider: &str,
        key: &str,
        decode: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Option<T> {
        if self.cold {
            self.record(provider, key, false, 0);
            return None;
        }
        let path = self.file_path(provider, key);
        let _span = kcb_obs::span("ckpt", "ckpt.read").arg("provider", provider);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.record(provider, key, false, 0);
                return None;
            }
        };
        match Self::verify(provider, key, &raw).and_then(decode) {
            Ok(v) => {
                Self::touch(&path);
                self.record(provider, key, true, raw.len() as u64);
                Some(v)
            }
            Err(e) => {
                eprintln!(
                    "warning: checkpoint {} unusable ({e}); retraining {provider}",
                    path.display()
                );
                self.record(provider, key, false, raw.len() as u64);
                None
            }
        }
    }

    /// Validates the container header and payload checksum, returning the
    /// payload slice.
    fn verify<'a>(provider: &str, key: &str, raw: &'a [u8]) -> Result<&'a [u8]> {
        let mut r = Reader::new(raw, "checkpoint");
        let _span = kcb_obs::span("ckpt", "ckpt.verify").arg("provider", provider);
        r.magic(CONTAINER_MAGIC)?;
        r.version(CONTAINER_VERSION)?;
        let stored_provider = r.str()?;
        let stored_key = r.str()?;
        if stored_provider != provider || stored_key != key {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("header names {stored_provider}/{stored_key}, expected {provider}/{key}"),
            ));
        }
        let checksum = r.u64()?;
        let len = r.u64()? as usize;
        if len != r.remaining() {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("payload length {len} != remaining {}", r.remaining()),
            ));
        }
        let payload = &raw[raw.len() - len..];
        if fnv1a(payload) != checksum {
            return Err(kcb_util::Error::parse("checkpoint", "payload checksum mismatch"));
        }
        Ok(payload)
    }

    /// Persists `payload` as `provider`'s artifact under `key` (temp file +
    /// rename). Write failures warn and are otherwise ignored — caching is
    /// never allowed to fail a run.
    pub fn put(&self, provider: &str, key: &str, payload: &[u8]) {
        let _span = kcb_obs::span("ckpt", "ckpt.write")
            .arg("provider", provider)
            .arg("bytes", payload.len());
        let mut w = Writer::new();
        w.raw(CONTAINER_MAGIC);
        w.u32(CONTAINER_VERSION);
        w.str(provider);
        w.str(key);
        w.u64(fnv1a(payload));
        w.u64(payload.len() as u64);
        w.raw(payload);
        let path = self.file_path(provider, key);
        let tmp = self.dir.join(format!(".{provider}-{key}.tmp"));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&tmp, w.into_bytes())?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("warning: could not write checkpoint {} ({e})", path.display());
            std::fs::remove_file(&tmp).ok();
        } else {
            kcb_obs::counter("ckpt.writes", 1);
        }
    }

    /// Persists `meta` plus the concatenated f32 `parts` as a
    /// [`CONTAINER_VERSION_RAW`] container with an aligned raw payload that
    /// warm starts can memory-map in place.
    pub fn put_raw(&self, provider: &str, key: &str, meta: &[u8], parts: &[&[f32]]) {
        let (raw, stripe_sums) = pack_f32s(parts);
        let _span = kcb_obs::span("ckpt", "ckpt.write")
            .arg("provider", provider)
            .arg("bytes", raw.len() + meta.len());
        let mut w = Writer::new();
        w.raw(CONTAINER_MAGIC);
        w.u32(CONTAINER_VERSION_RAW);
        w.u64(0); // raw_off placeholder, patched below
        w.u64(raw.len() as u64);
        w.str(provider);
        w.str(key);
        w.u64(fnv1a(meta));
        w.u64(meta.len() as u64);
        w.raw(meta);
        w.u32(stripe_sums.len() as u32);
        for &s in &stripe_sums {
            w.u64(s);
        }
        let mut bytes = w.into_bytes();
        let raw_off = bytes.len().div_ceil(RAW_ALIGN) * RAW_ALIGN;
        bytes[8..16].copy_from_slice(&(raw_off as u64).to_le_bytes());
        bytes.resize(raw_off, 0);
        bytes.extend_from_slice(&raw);
        let path = self.file_path(provider, key);
        let tmp = self.dir.join(format!(".{provider}-{key}.tmp"));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&tmp, &bytes)?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("warning: could not write checkpoint {} ({e})", path.display());
            std::fs::remove_file(&tmp).ok();
        } else {
            kcb_obs::counter("ckpt.writes", 1);
        }
    }

    /// Parses a raw container's header, returning `(meta, section)`. The
    /// metadata checksum is verified here; stripe checksums verify lazily
    /// inside the returned [`RawSection`].
    fn parse_raw(
        provider: &str,
        key: &str,
        bytes: &[u8],
        map: Option<Arc<Mmap>>,
    ) -> Result<(Vec<u8>, RawSection)> {
        let mut r = Reader::new(bytes, "checkpoint");
        r.magic(CONTAINER_MAGIC)?;
        r.version(CONTAINER_VERSION_RAW)?;
        let raw_off = r.u64()? as usize;
        let raw_len = r.u64()? as usize;
        let stored_provider = r.str()?;
        let stored_key = r.str()?;
        if stored_provider != provider || stored_key != key {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("header names {stored_provider}/{stored_key}, expected {provider}/{key}"),
            ));
        }
        let meta_sum = r.u64()?;
        let meta_len = r.u64()? as usize;
        r.sized(meta_len, 1)?;
        let mut meta = Vec::with_capacity(meta_len);
        for _ in 0..meta_len {
            meta.push(r.u8()?);
        }
        if fnv1a(&meta) != meta_sum {
            return Err(kcb_util::Error::parse("checkpoint", "metadata checksum mismatch"));
        }
        let n_stripes = r.u32()? as usize;
        r.sized(n_stripes, 8)?;
        let stripe_sums = (0..n_stripes).map(|_| r.u64()).collect::<Result<Vec<_>>>()?;
        if raw_off < bytes.len() - r.remaining() || !raw_off.is_multiple_of(RAW_ALIGN) {
            return Err(kcb_util::Error::parse("checkpoint", "raw offset overlaps header"));
        }
        if raw_off.saturating_add(raw_len) != bytes.len() {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("raw section {raw_off}+{raw_len} != file size {}", bytes.len()),
            ));
        }
        let section = match map {
            Some(m) => RawSection::from_map(m, raw_off, raw_len, stripe_sums)?,
            None => RawSection::from_owned(bytes.to_vec(), raw_off, raw_len, stripe_sums)?,
        };
        Ok((meta, section))
    }

    /// Tries to load a raw-payload artifact under `key`. A version-2
    /// container is memory-mapped when enabled (zero-copy, stripes verified
    /// lazily) or read into owned memory otherwise; a legacy version-1
    /// container falls back to `decode_v1` on the verified payload. Any
    /// failure is a miss with one warning line.
    pub fn take_raw<T>(
        &self,
        provider: &str,
        key: &str,
        decode_v2: impl FnOnce(&[u8], &RawSection) -> Result<T>,
        decode_v1: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Option<T> {
        if self.cold {
            self.record(provider, key, false, 0);
            return None;
        }
        let path = self.file_path(provider, key);
        let _span = kcb_obs::span("ckpt", "ckpt.read").arg("provider", provider);
        let attempt = || -> Result<(T, u64)> {
            if self.mmap {
                if let Ok(map) = Mmap::open(&path) {
                    let map = Arc::new(map);
                    let len = map.len() as u64;
                    let version = container_version(map.bytes());
                    if version == Some(CONTAINER_VERSION_RAW) {
                        let (meta, section) =
                            Self::parse_raw(provider, key, map.bytes(), Some(Arc::clone(&map)))?;
                        return decode_v2(&meta, &section).map(|v| (v, len));
                    }
                    // Legacy v1 container: fall through to the decode path.
                }
            }
            let bytes = std::fs::read(&path).map_err(kcb_util::Error::Io)?;
            let len = bytes.len() as u64;
            if container_version(&bytes) == Some(CONTAINER_VERSION_RAW) {
                let (meta, section) = Self::parse_raw(provider, key, &bytes, None)?;
                decode_v2(&meta, &section).map(|v| (v, len))
            } else {
                let payload = Self::verify(provider, key, &bytes)?;
                decode_v1(payload).map(|v| (v, len))
            }
        };
        if !path.exists() {
            self.record(provider, key, false, 0);
            return None;
        }
        match attempt() {
            Ok((v, len)) => {
                Self::touch(&path);
                self.record(provider, key, true, len);
                Some(v)
            }
            Err(e) => {
                eprintln!(
                    "warning: checkpoint {} unusable ({e}); retraining {provider}",
                    path.display()
                );
                self.record(provider, key, false, 0);
                None
            }
        }
    }

    /// Cheap freshness probe: true when a plausible checkpoint file exists
    /// for `key` and the store is warm. No decode, no checksum, no event —
    /// providers use this to skip eager materialization, trusting the
    /// getter's full verify-or-retrain path to handle a file that turns out
    /// to be corrupt.
    pub fn is_fresh(&self, provider: &str, key: &str) -> bool {
        if self.cold {
            return false;
        }
        std::fs::metadata(self.file_path(provider, key))
            .map(|m| m.is_file() && m.len() > 24)
            .unwrap_or(false)
    }

    /// Evicts least-recently-used first until the store's total `.ckpt`
    /// size is at most `cap_bytes`. Returns a one-line report.
    ///
    /// Files younger than [`GC_GRACE`] are never evicted: another `repro`
    /// process sharing the store (e.g. the interrupted and resumed legs of
    /// a journaled run, or a concurrent CI matrix) may have just written
    /// them — and an mtime this recent also means "in active use", so
    /// deleting such a file could race its writer's rename or its reader's
    /// first open. They still count toward `kept_bytes`, so a store full of
    /// young files simply stays over cap until the next sweep.
    pub fn gc(&self, cap_bytes: u64) -> GcReport {
        self.gc_with_grace(cap_bytes, GC_GRACE)
    }

    /// [`CkptStore::gc`] with an explicit grace window (tests use zero).
    ///
    /// "Recently used" is the file mtime, which every successful
    /// [`CkptStore::take`] / [`CkptStore::take_raw`] refreshes — so entries
    /// a long-lived process keeps reading (including zero-copy mmap reads,
    /// which the filesystem would otherwise never reflect in mtime) stay
    /// resident, and only genuinely idle checkpoints are evicted.
    pub fn gc_with_grace(&self, cap_bytes: u64, grace: std::time::Duration) -> GcReport {
        let now = std::time::SystemTime::now();
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = Vec::new();
        if let Ok(dir) = std::fs::read_dir(&self.dir) {
            for e in dir.flatten() {
                let path = e.path();
                if path.extension().map(|x| x == "ckpt") != Some(true) {
                    continue;
                }
                if let Ok(m) = e.metadata() {
                    let mtime = m.modified().unwrap_or(std::time::UNIX_EPOCH);
                    entries.push((path, m.len(), mtime));
                }
            }
        }
        let scanned = entries.len();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        let mut evicted = 0usize;
        let mut freed = 0u64;
        for (path, len, mtime) in &entries {
            if total <= cap_bytes {
                break;
            }
            // Grace window: too young to be sure nobody is mid-write or
            // mid-read; a concurrent writer's tmp+rename refreshes mtime.
            if now.duration_since(*mtime).map(|age| age < grace).unwrap_or(true) {
                continue;
            }
            if std::fs::remove_file(path).is_ok() {
                total -= len;
                freed += len;
                evicted += 1;
            }
        }
        GcReport { scanned, evicted, freed_bytes: freed, kept_bytes: total, cap_bytes }
    }

    /// Load-or-train in one call: [`CkptStore::take`], falling back to
    /// `make` + [`CkptStore::put`].
    pub fn load_or_make<T>(
        &self,
        provider: &str,
        key: &str,
        decode: impl FnOnce(&[u8]) -> Result<T>,
        encode: impl FnOnce(&T) -> Vec<u8>,
        make: impl FnOnce() -> T,
    ) -> T {
        if let Some(v) = self.take(provider, key, decode) {
            return v;
        }
        let v = make();
        self.put(provider, key, &encode(&v));
        v
    }
}

/// Peeks at a container's version field without consuming the reader
/// (`None` when the file is too short or the magic is wrong).
fn container_version(bytes: &[u8]) -> Option<u32> {
    if bytes.len() < 8 || &bytes[..4] != CONTAINER_MAGIC {
        return None;
    }
    Some(u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes")))
}

/// Result of a [`CkptStore::gc`] sweep.
#[derive(Debug, Clone)]
pub struct GcReport {
    /// `.ckpt` files found in the store.
    pub scanned: usize,
    /// Files deleted this sweep.
    pub evicted: usize,
    /// Bytes freed.
    pub freed_bytes: u64,
    /// Bytes remaining after the sweep.
    pub kept_bytes: u64,
    /// The cap that drove eviction.
    pub cap_bytes: u64,
}

impl std::fmt::Display for GcReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "ckpt gc: {} of {} files evicted ({} freed, {} kept, cap {})",
            self.evicted,
            self.scanned,
            kcb_util::fmt::bytes(self.freed_bytes),
            kcb_util::fmt::bytes(self.kept_bytes),
            kcb_util::fmt::bytes(self.cap_bytes),
        )
    }
}

/// Load-or-train against an optional store: with no store attached the
/// artifact is simply built (the `Lab::new` path used by unit tests).
pub(crate) fn cached<T>(
    store: Option<&CkptStore>,
    provider: &str,
    key: &str,
    decode: impl FnOnce(&[u8]) -> Result<T>,
    encode: impl FnOnce(&T) -> Vec<u8>,
    make: impl FnOnce() -> T,
) -> T {
    match store {
        Some(s) => s.load_or_make(provider, key, decode, encode, make),
        None => make(),
    }
}

/// Raw-container variant of [`cached`]: decodes a v2 container via
/// `decode_v2` (zero-copy when mapped), a legacy v1 container via
/// `decode_v1`, and on a miss builds the artifact and writes it back in v2
/// form. `encode` returns the metadata blob plus the flat f32 parts that
/// become the aligned raw payload.
pub(crate) fn cached_raw<T>(
    store: Option<&CkptStore>,
    provider: &str,
    key: &str,
    decode_v2: impl FnOnce(&[u8], &RawSection) -> Result<T>,
    decode_v1: impl FnOnce(&[u8]) -> Result<T>,
    encode: impl for<'t> FnOnce(&'t T) -> (Vec<u8>, Vec<&'t [f32]>),
    make: impl FnOnce() -> T,
) -> T {
    match store {
        Some(s) => {
            if let Some(v) = s.take_raw(provider, key, decode_v2, decode_v1) {
                return v;
            }
            let v = make();
            let (meta, parts) = encode(&v);
            s.put_raw(provider, key, &meta, &parts);
            v
        }
        None => make(),
    }
}

/// Config-derived fingerprint of the domain corpus (and, transitively, the
/// ontology it is generated from).
pub(crate) fn domain_fp(cfg: &crate::lab::LabConfig) -> String {
    format!("domain(n={},seed={},scale={})", cfg.n_domain_docs, cfg.seed, cfg.scale)
}

/// Config-derived fingerprint of the generic corpus.
pub(crate) fn generic_fp(cfg: &crate::lab::LabConfig) -> String {
    format!("generic(n={},seed={})", cfg.n_generic_docs, cfg.seed ^ 0x9e37)
}

// ---------------------------------------------------------------------------
// Derived-results cache: memoised cell scores, memoised row vectors, forest
// runs and LSTM runs, one payload per full-config digest.
// ---------------------------------------------------------------------------

const DERIVED_MAGIC: &[u8; 4] = b"KCBD";
const DERIVED_VERSION: u32 = 1;

/// In-memory form of the derived-results cache.
#[derive(Default)]
pub(crate) struct Derived {
    /// Memoised scalar scores (`Shared::memo_score`).
    pub scores: Vec<(String, f64)>,
    /// Memoised row vectors (`Shared::memo_vec`).
    pub vecs: Vec<(String, Vec<f64>)>,
    /// Forest runs by `(task, model, adaptation)` key.
    pub forests: Vec<(String, std::sync::Arc<crate::paradigm::ml::ForestRun>)>,
    /// LSTM runs by model name.
    pub lstms: Vec<(String, std::sync::Arc<crate::paradigm::ml::LstmRun>)>,
}

impl Derived {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(DERIVED_MAGIC);
        w.u32(DERIVED_VERSION);
        w.u32(self.scores.len() as u32);
        for (k, v) in &self.scores {
            w.str(k);
            w.f64(*v);
        }
        w.u32(self.vecs.len() as u32);
        for (k, v) in &self.vecs {
            w.str(k);
            w.f64s(v);
        }
        w.u32(self.forests.len() as u32);
        for (k, run) in &self.forests {
            w.str(k);
            encode_forest_run(run, &mut w);
        }
        w.u32(self.lstms.len() as u32);
        for (k, run) in &self.lstms {
            w.str(k);
            w.str(&run.model_name);
            encode_metrics(&run.metrics, &mut w);
        }
        w.into_bytes()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes, "derived cache");
        r.magic(DERIVED_MAGIC)?;
        r.version(DERIVED_VERSION)?;
        let mut out = Self::default();
        let n = r.u32()? as usize;
        r.sized(n, 12)?;
        for _ in 0..n {
            let k = r.str()?;
            out.scores.push((k, r.f64()?));
        }
        let n = r.u32()? as usize;
        r.sized(n, 8)?;
        for _ in 0..n {
            let k = r.str()?;
            out.vecs.push((k, r.f64s()?));
        }
        let n = r.u32()? as usize;
        r.sized(n, 16)?;
        for _ in 0..n {
            let k = r.str()?;
            out.forests.push((k, std::sync::Arc::new(decode_forest_run(&mut r)?)));
        }
        let n = r.u32()? as usize;
        r.sized(n, 40)?;
        for _ in 0..n {
            let k = r.str()?;
            let model_name = r.str()?;
            let metrics = decode_metrics(&mut r)?;
            out.lstms.push((
                k,
                std::sync::Arc::new(crate::paradigm::ml::LstmRun { model_name, metrics }),
            ));
        }
        r.finish()?;
        Ok(out)
    }
}

fn encode_metrics(m: &kcb_ml::metrics::BinaryMetrics, w: &mut Writer) {
    w.f64(m.accuracy);
    w.f64(m.precision);
    w.f64(m.recall);
    w.f64(m.f1);
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<kcb_ml::metrics::BinaryMetrics> {
    Ok(kcb_ml::metrics::BinaryMetrics {
        accuracy: r.f64()?,
        precision: r.f64()?,
        recall: r.f64()?,
        f1: r.f64()?,
    })
}

fn encode_forest_run(run: &crate::paradigm::ml::ForestRun, w: &mut Writer) {
    w.str(&run.encoder_name);
    encode_metrics(&run.metrics, w);
    run.forest.encode(w);
    w.f32s(&run.test_probs);
    w.u32(run.test_labels.len() as u32);
    for &b in &run.test_labels {
        w.u8(b as u8);
    }
    w.u32(run.test_relations.len() as u32);
    for &rel in &run.test_relations {
        w.u8(rel.code());
    }
    w.f64s(&run.importances);
}

fn decode_forest_run(r: &mut Reader<'_>) -> Result<crate::paradigm::ml::ForestRun> {
    let err = |m: &str| kcb_util::Error::parse("derived cache", m.to_string());
    let encoder_name = r.str()?;
    let metrics = decode_metrics(r)?;
    let forest = kcb_ml::RandomForest::decode(r)?;
    let test_probs = r.f32s()?;
    let n = r.u32()? as usize;
    r.sized(n, 1)?;
    let test_labels = (0..n).map(|_| r.u8().map(|b| b != 0)).collect::<Result<Vec<_>>>()?;
    let n = r.u32()? as usize;
    r.sized(n, 1)?;
    let test_relations = (0..n)
        .map(|_| {
            let code = r.u8()?;
            if code as usize >= kcb_ontology::Relation::ALL.len() {
                return Err(err("relation code out of range"));
            }
            Ok(kcb_ontology::Relation::from_code(code))
        })
        .collect::<Result<Vec<_>>>()?;
    let importances = r.f64s()?;
    if test_probs.len() != test_labels.len() || test_labels.len() != test_relations.len() {
        return Err(err("test-set column lengths disagree"));
    }
    Ok(crate::paradigm::ml::ForestRun {
        encoder_name,
        metrics,
        forest,
        test_probs,
        test_labels,
        test_relations,
        importances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_key_is_stable_and_sensitive() {
        let a = digest_key(1, &["cfg", "corpus"]);
        assert_eq!(a, digest_key(1, &["cfg", "corpus"]));
        assert_eq!(a.len(), 16);
        assert_ne!(a, digest_key(2, &["cfg", "corpus"]), "schema bump must change the key");
        assert_ne!(a, digest_key(1, &["cfg2", "corpus"]));
        assert_ne!(a, digest_key(1, &["cfg", "corpus2"]));
    }

    fn temp_store(name: &str) -> CkptStore {
        let dir = std::env::temp_dir().join(format!("kcb-ckpt-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CkptStore::open(dir)
    }

    fn decode_u64(b: &[u8]) -> Result<u64> {
        let mut r = Reader::new(b, "test");
        let v = r.u64()?;
        r.finish()?;
        Ok(v)
    }

    #[test]
    fn load_or_make_round_trips_and_counts() {
        let store = temp_store("roundtrip");
        let mut made = 0;
        let encode = |v: &u64| {
            let mut w = Writer::new();
            w.u64(*v);
            w.into_bytes()
        };
        let v = store.load_or_make("unit", "k1", decode_u64, encode, || {
            made += 1;
            99
        });
        assert_eq!((v, made), (99, 1));
        let v = store.load_or_make("unit", "k1", decode_u64, encode, || {
            made += 1;
            0
        });
        assert_eq!((v, made), (99, 1), "second lookup must hit");
        assert_eq!(store.stats(), (1, 1));
        let events = store.events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].hit && events[1].hit);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn cold_store_ignores_existing_but_still_writes() {
        let store = temp_store("cold");
        store.put("unit", "k", &{
            let mut w = Writer::new();
            w.u64(7);
            w.into_bytes()
        });
        let cold = CkptStore::cold(store.dir().to_path_buf());
        let v = cold.load_or_make(
            "unit",
            "k",
            decode_u64,
            |v| {
                let mut w = Writer::new();
                w.u64(*v);
                w.into_bytes()
            },
            || 8,
        );
        assert_eq!(v, 8, "cold mode must retrain");
        // The rewritten entry is visible to a subsequent warm store.
        let warm = CkptStore::open(store.dir().to_path_buf());
        assert_eq!(warm.take("unit", "k", decode_u64), Some(8));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_retraining() {
        let store = temp_store("trunc");
        let mut w = Writer::new();
        w.u64(1234);
        store.put("unit", "k", &w.into_bytes());
        // Truncate the real file mid-payload.
        let path = store.dir().join("unit-k.ckpt");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);
        // A fresh write repairs the entry.
        let mut w = Writer::new();
        w.u64(5678);
        store.put("unit", "k", &w.into_bytes());
        assert_eq!(store.take("unit", "k", decode_u64), Some(5678));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn version_flip_and_bit_flip_fall_back() {
        let store = temp_store("flip");
        let mut w = Writer::new();
        w.u64(42);
        store.put("unit", "k", &w.into_bytes());
        let path = store.dir().join("unit-k.ckpt");
        let good = std::fs::read(&path).unwrap();

        // Container-version byte flipped.
        let mut bad = good.clone();
        bad[4] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);

        // Payload bit flipped — caught by the checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);

        // Pristine bytes restored — hit again.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), Some(42));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wrong_provider_name_is_rejected() {
        let store = temp_store("name");
        let mut w = Writer::new();
        w.u64(1);
        store.put("unit-a", "k", &w.into_bytes());
        // Copy the file under another provider's name: header mismatch.
        std::fs::copy(store.dir().join("unit-a-k.ckpt"), store.dir().join("unit-b-k.ckpt"))
            .unwrap();
        assert_eq!(store.take("unit-b", "k", decode_u64), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    fn raw_decode_v2(meta: &[u8], raw: &RawSection) -> Result<(Vec<u8>, Vec<f32>)> {
        let n = raw.len() / 4;
        Ok((meta.to_vec(), raw.f32s(0, n)?.as_slice().to_vec()))
    }

    #[test]
    fn raw_container_round_trips_mapped_and_owned() {
        let store = temp_store("raw");
        let meta = b"shape:3x500".to_vec();
        let data: Vec<f32> = (0..1500).map(|i| (i as f32 * 0.11).cos()).collect();
        store.put_raw("unit", "k", &meta, &[&data[..700], &data[700..]]);

        let got = store.take_raw("unit", "k", raw_decode_v2, |_| unreachable!("v1"));
        let (m, d) = got.expect("mapped hit");
        assert_eq!(m, meta);
        assert_eq!(d.len(), data.len());
        assert!(d.iter().zip(&data).all(|(a, b)| a.to_bits() == b.to_bits()));

        let mut no_mmap = CkptStore::open(store.dir().to_path_buf());
        no_mmap.set_mmap(false);
        let (m2, d2) = no_mmap
            .take_raw("unit", "k", raw_decode_v2, |_| unreachable!("v1"))
            .expect("owned hit");
        assert_eq!(m2, meta);
        assert!(d2.iter().zip(&d).all(|(a, b)| a.to_bits() == b.to_bits()));
        assert_eq!(store.stats(), (1, 0));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn raw_reader_falls_back_to_legacy_v1_containers() {
        let store = temp_store("raw-legacy");
        let mut w = Writer::new();
        w.u64(4242);
        store.put("unit", "k", &w.into_bytes()); // v1 container
        let got = store.take_raw(
            "unit",
            "k",
            |_, _| -> Result<u64> { unreachable!("v2") },
            decode_u64,
        );
        assert_eq!(got, Some(4242));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn raw_container_corruption_falls_back() {
        let store = temp_store("raw-corrupt");
        let data: Vec<f32> = (0..2000).map(|i| i as f32).collect();
        store.put_raw("unit", "k", b"m", &[&data]);
        let path = store.dir().join("unit-k.ckpt");
        let good = std::fs::read(&path).unwrap();

        // Flip a payload bit: caught by the stripe checksum on access.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(store.take_raw("unit", "k", raw_decode_v2, |_| unreachable!()).is_none());

        // Flip a metadata byte: caught eagerly by the meta checksum.
        let mut bad = good.clone();
        bad[40] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(store.take_raw("unit", "k", raw_decode_v2, |_| unreachable!()).is_none());

        // Truncations never panic.
        for cut in [0usize, 7, 20, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(
                store
                    .take_raw("unit", "k", raw_decode_v2, |b| decode_u64(b)
                        .map(|v| (vec![], vec![v as f32])))
                    .is_none(),
                "cut {cut}"
            );
        }

        std::fs::write(&path, &good).unwrap();
        assert!(store.take_raw("unit", "k", raw_decode_v2, |_| unreachable!()).is_some());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn freshness_probe_is_quiet_and_cold_aware() {
        let store = temp_store("fresh");
        assert!(!store.is_fresh("unit", "k"));
        let mut w = Writer::new();
        w.u64(1);
        store.put("unit", "k", &w.into_bytes());
        assert!(store.is_fresh("unit", "k"));
        assert!(store.events().is_empty(), "probe must not record events");
        let cold = CkptStore::cold(store.dir().to_path_buf());
        assert!(!cold.is_fresh("unit", "k"));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_evicts_oldest_first_until_under_cap() {
        let store = temp_store("gc");
        for (i, name) in ["a", "b", "c"].iter().enumerate() {
            let mut w = Writer::new();
            w.u64(i as u64);
            store.put("unit", name, &w.into_bytes());
            // Distinct mtimes, oldest = "a".
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let f = std::fs::File::options()
                .append(true)
                .open(store.dir().join(format!("unit-{name}.ckpt")))
                .unwrap();
            f.set_modified(t).unwrap();
        }
        let one = std::fs::metadata(store.dir().join("unit-a.ckpt")).unwrap().len();
        let report = store.gc(2 * one);
        assert_eq!((report.scanned, report.evicted), (3, 1));
        assert_eq!(report.freed_bytes, one);
        assert!(!store.dir().join("unit-a.ckpt").exists(), "oldest must go first");
        assert!(store.dir().join("unit-c.ckpt").exists());
        assert!(format!("{report}").contains("1 of 3 files evicted"));
        // A generous cap is a no-op.
        let report = store.gc(u64::MAX);
        assert_eq!(report.evicted, 0);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn gc_spares_files_younger_than_the_grace_window() {
        let store = temp_store("gc-grace");
        // "old" predates the grace window; "young" was written just now —
        // exactly what a concurrent writer's fresh checkpoint looks like.
        for name in ["old", "young"] {
            let mut w = Writer::new();
            w.u64(7);
            store.put("unit", name, &w.into_bytes());
        }
        let old = store.dir().join("unit-old.ckpt");
        let t = std::time::SystemTime::now() - 10 * GC_GRACE;
        std::fs::File::options().append(true).open(&old).unwrap().set_modified(t).unwrap();
        // Cap 0 would evict everything; the young file must survive.
        let report = store.gc(0);
        assert_eq!((report.scanned, report.evicted), (2, 1));
        assert!(!old.exists(), "aged-out file is evicted");
        assert!(store.dir().join("unit-young.ckpt").exists(), "young file survives");
        assert!(report.kept_bytes > 0, "survivors still count toward kept bytes");
        // With the window forced to zero, age no longer protects it.
        let report = store.gc_with_grace(0, std::time::Duration::ZERO);
        assert_eq!(report.evicted, 1);
        assert!(!store.dir().join("unit-young.ckpt").exists());
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn reads_refresh_eviction_order() {
        let store = temp_store("gc-touch");
        for (i, name) in ["hot", "idle"].iter().enumerate() {
            let mut w = Writer::new();
            w.u64(i as u64);
            store.put("unit", name, &w.into_bytes());
            // Both entries start equally ancient; "hot" is older.
            let t = std::time::SystemTime::UNIX_EPOCH
                + std::time::Duration::from_secs(1_000_000 + i as u64 * 100);
            let f = std::fs::File::options()
                .append(true)
                .open(store.dir().join(format!("unit-{name}.ckpt")))
                .unwrap();
            f.set_modified(t).unwrap();
        }
        // A serving process keeps reading "hot": the hit bumps its
        // last-touch stamp past "idle".
        assert!(store.take("unit", "hot", decode_u64).is_some());
        let one = std::fs::metadata(store.dir().join("unit-hot.ckpt")).unwrap().len();
        let report = store.gc(one);
        assert_eq!(report.evicted, 1);
        assert!(store.dir().join("unit-hot.ckpt").exists(), "recently read entry must survive");
        assert!(!store.dir().join("unit-idle.ckpt").exists(), "idle entry is evicted");
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn derived_cache_round_trips() {
        use kcb_ml::linalg::Matrix;
        let x = Matrix::from_rows((0..30).map(|i| vec![i as f32, (i % 3) as f32]).collect::<Vec<_>>());
        let y: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let forest = kcb_ml::RandomForest::fit(
            &x,
            &y,
            &kcb_ml::RandomForestConfig { n_trees: 3, n_threads: 1, ..Default::default() },
        );
        let run = crate::paradigm::ml::ForestRun {
            encoder_name: "enc".into(),
            metrics: kcb_ml::metrics::BinaryMetrics {
                accuracy: 0.5,
                precision: 0.25,
                recall: 0.75,
                f1: 0.375,
            },
            forest,
            test_probs: vec![0.1, 0.9],
            test_labels: vec![false, true],
            test_relations: vec![kcb_ontology::Relation::IsA, kcb_ontology::Relation::HasRole],
            importances: vec![0.5, 0.5],
        };
        let d = Derived {
            scores: vec![("rf|1".into(), 0.125)],
            vecs: vec![("icl|1".into(), vec![1.0, -2.5])],
            forests: vec![("1|random|naive".into(), std::sync::Arc::new(run))],
            lstms: vec![(
                "random".into(),
                std::sync::Arc::new(crate::paradigm::ml::LstmRun {
                    model_name: "random".into(),
                    metrics: kcb_ml::metrics::BinaryMetrics {
                        accuracy: 1.0,
                        precision: 1.0,
                        recall: 0.0,
                        f1: 0.0,
                    },
                }),
            )],
        };
        let bytes = d.to_bytes();
        let e = Derived::from_bytes(&bytes).expect("decode");
        assert_eq!(e.scores, d.scores);
        assert_eq!(e.vecs, d.vecs);
        assert_eq!(e.lstms.len(), 1);
        assert_eq!(e.lstms[0].1.model_name, "random");
        assert_eq!(e.forests.len(), 1);
        let (k, run2) = &e.forests[0];
        assert_eq!(k, "1|random|naive");
        assert_eq!(run2.encoder_name, "enc");
        assert_eq!(run2.metrics.f1, 0.375);
        assert_eq!(run2.test_probs, vec![0.1, 0.9]);
        assert_eq!(run2.test_relations, d.forests[0].1.test_relations);
        assert_eq!(
            run2.forest.predict_proba(&[3.0, 1.0]).to_bits(),
            d.forests[0].1.forest.predict_proba(&[3.0, 1.0]).to_bits()
        );
        // Truncations error cleanly.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Derived::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
