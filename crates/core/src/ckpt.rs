//! Persistent content-addressed checkpoint store.
//!
//! Training the lab's providers (embedding tables, the WordPiece
//! vocabulary, the two mini language models) and the derived experiment
//! results (forest runs, memoised cell scores) dominates a `repro` run's
//! wall clock, yet every one of them is a pure function of [`LabConfig`].
//! This module caches them on disk between runs, addressed by content key:
//!
//! * **Key derivation** — each artifact's key is the FNV-64 digest of its
//!   full determinant string: the provider's schema-version constant, the
//!   `Debug` rendering of every config that feeds its training, and the
//!   fingerprints of its input corpora (themselves config-derived). Change
//!   any input — seed, scale, trainer hyperparameter, corpus size — and the
//!   key changes, so a stale checkpoint is simply never *addressed*. Bump
//!   the provider's `SCHEMA_*` constant when the trainer's byte output or
//!   the on-disk format changes.
//! * **On-disk layout** — one file per artifact under the cache directory,
//!   named `<provider>-<key16>.ckpt`. Every file carries a container header
//!   (magic `KCBC`, container version, provider name, key, payload FNV-64
//!   checksum) followed by a provider-specific payload. Writes go through a
//!   temp file + rename, so a crashed run never leaves a half-written
//!   checkpoint under the final name.
//! * **Fallback** — a missing, truncated, corrupt or version-mismatched
//!   checkpoint is treated as a miss: one warning line on stderr, then the
//!   artifact retrains exactly as if the cache were empty. The store can
//!   slow a run down; it can never change results or make one fail.
//!
//! The contract mirrored by the CI warm-cache job: cache state (cold,
//! warm, corrupt) is a wall-clock knob, never a results knob — a warm run
//! must produce byte-identical artifact JSON to a cold one.

use kcb_util::bin::{Reader, Writer};
use kcb_util::{fnv1a, Result};
use parking_lot::Mutex;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Schema version of the W2V-Chem embedding checkpoint.
pub const SCHEMA_W2V: u32 = 1;
/// Schema version of the generic-GloVe embedding checkpoint.
pub const SCHEMA_GLOVE: u32 = 1;
/// Schema version of the GloVe-Chem (warm-started) embedding checkpoint.
pub const SCHEMA_GLOVE_CHEM: u32 = 1;
/// Schema version of the BioWordVec (fastText) checkpoint.
pub const SCHEMA_BIOWORDVEC: u32 = 1;
/// Schema version of the WordPiece vocabulary checkpoint.
pub const SCHEMA_WORDPIECE: u32 = 1;
/// Schema version of the mini-BERT weight checkpoint.
pub const SCHEMA_BERT: u32 = 1;
/// Schema version of the BioGPT-mini weight checkpoint.
pub const SCHEMA_BIOGPT: u32 = 1;
/// Schema version of the derived-results cache.
pub const SCHEMA_DERIVED: u32 = 1;

const CONTAINER_MAGIC: &[u8; 4] = b"KCBC";
const CONTAINER_VERSION: u32 = 1;

/// Derives an artifact's content key: FNV-64 over the schema version and
/// every determinant part, rendered as 16 hex chars (the file-name stem).
pub fn digest_key(schema: u32, parts: &[&str]) -> String {
    let mut joined = format!("v{schema}");
    for p in parts {
        joined.push('|');
        joined.push_str(p);
    }
    format!("{:016x}", fnv1a(joined.as_bytes()))
}

/// One checkpoint lookup or write, reported through `run_meta.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct CkptEvent {
    /// Provider name (`embed-w2v-chem`, `lm-bert`, `derived`, ...).
    pub provider: String,
    /// Content key (16 hex chars).
    pub key: String,
    /// True when the artifact was served from disk.
    pub hit: bool,
    /// Payload size in bytes (0 for a miss without a file).
    pub bytes: u64,
}

/// A persistent content-addressed checkpoint store rooted at one directory.
pub struct CkptStore {
    dir: PathBuf,
    cold: bool,
    hits: AtomicUsize,
    misses: AtomicUsize,
    events: Mutex<Vec<CkptEvent>>,
}

impl CkptStore {
    /// Opens (and lazily creates) a store rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> Self {
        Self {
            dir: dir.into(),
            cold: false,
            hits: AtomicUsize::new(0),
            misses: AtomicUsize::new(0),
            events: Mutex::new(Vec::new()),
        }
    }

    /// Opens a store in *cold* mode: every lookup misses (forcing a fresh
    /// train) but results are still written, overwriting stale entries.
    pub fn cold(dir: impl Into<PathBuf>) -> Self {
        Self { cold: true, ..Self::open(dir) }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// True when opened with [`CkptStore::cold`].
    pub fn is_cold(&self) -> bool {
        self.cold
    }

    /// `(hits, misses)` so far.
    pub fn stats(&self) -> (usize, usize) {
        (self.hits.load(Ordering::Relaxed), self.misses.load(Ordering::Relaxed))
    }

    /// Every lookup so far, in order.
    pub fn events(&self) -> Vec<CkptEvent> {
        self.events.lock().clone()
    }

    fn file_path(&self, provider: &str, key: &str) -> PathBuf {
        self.dir.join(format!("{provider}-{key}.ckpt"))
    }

    fn record(&self, provider: &str, key: &str, hit: bool, bytes: u64) {
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
            kcb_obs::counter("ckpt.hits", 1);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
            kcb_obs::counter("ckpt.misses", 1);
        }
        self.events.lock().push(CkptEvent {
            provider: provider.to_string(),
            key: key.to_string(),
            hit,
            bytes,
        });
    }

    /// Tries to load and decode `provider`'s artifact under `key`. Returns
    /// `None` (recording a miss) when the file is absent, the store is
    /// cold, or the checkpoint is unusable for any reason — the latter with
    /// a single warning line.
    pub fn take<T>(
        &self,
        provider: &str,
        key: &str,
        decode: impl FnOnce(&[u8]) -> Result<T>,
    ) -> Option<T> {
        if self.cold {
            self.record(provider, key, false, 0);
            return None;
        }
        let path = self.file_path(provider, key);
        let _span = kcb_obs::span("ckpt", "ckpt.read").arg("provider", provider);
        let raw = match std::fs::read(&path) {
            Ok(raw) => raw,
            Err(_) => {
                self.record(provider, key, false, 0);
                return None;
            }
        };
        match Self::verify(provider, key, &raw).and_then(decode) {
            Ok(v) => {
                self.record(provider, key, true, raw.len() as u64);
                Some(v)
            }
            Err(e) => {
                eprintln!(
                    "warning: checkpoint {} unusable ({e}); retraining {provider}",
                    path.display()
                );
                self.record(provider, key, false, raw.len() as u64);
                None
            }
        }
    }

    /// Validates the container header and payload checksum, returning the
    /// payload slice.
    fn verify<'a>(provider: &str, key: &str, raw: &'a [u8]) -> Result<&'a [u8]> {
        let mut r = Reader::new(raw, "checkpoint");
        let _span = kcb_obs::span("ckpt", "ckpt.verify").arg("provider", provider);
        r.magic(CONTAINER_MAGIC)?;
        r.version(CONTAINER_VERSION)?;
        let stored_provider = r.str()?;
        let stored_key = r.str()?;
        if stored_provider != provider || stored_key != key {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("header names {stored_provider}/{stored_key}, expected {provider}/{key}"),
            ));
        }
        let checksum = r.u64()?;
        let len = r.u64()? as usize;
        if len != r.remaining() {
            return Err(kcb_util::Error::parse(
                "checkpoint",
                format!("payload length {len} != remaining {}", r.remaining()),
            ));
        }
        let payload = &raw[raw.len() - len..];
        if fnv1a(payload) != checksum {
            return Err(kcb_util::Error::parse("checkpoint", "payload checksum mismatch"));
        }
        Ok(payload)
    }

    /// Persists `payload` as `provider`'s artifact under `key` (temp file +
    /// rename). Write failures warn and are otherwise ignored — caching is
    /// never allowed to fail a run.
    pub fn put(&self, provider: &str, key: &str, payload: &[u8]) {
        let _span = kcb_obs::span("ckpt", "ckpt.write")
            .arg("provider", provider)
            .arg("bytes", payload.len());
        let mut w = Writer::new();
        w.raw(CONTAINER_MAGIC);
        w.u32(CONTAINER_VERSION);
        w.str(provider);
        w.str(key);
        w.u64(fnv1a(payload));
        w.u64(payload.len() as u64);
        w.raw(payload);
        let path = self.file_path(provider, key);
        let tmp = self.dir.join(format!(".{provider}-{key}.tmp"));
        let write = || -> std::io::Result<()> {
            std::fs::create_dir_all(&self.dir)?;
            std::fs::write(&tmp, w.into_bytes())?;
            std::fs::rename(&tmp, &path)
        };
        if let Err(e) = write() {
            eprintln!("warning: could not write checkpoint {} ({e})", path.display());
            std::fs::remove_file(&tmp).ok();
        } else {
            kcb_obs::counter("ckpt.writes", 1);
        }
    }

    /// Load-or-train in one call: [`CkptStore::take`], falling back to
    /// `make` + [`CkptStore::put`].
    pub fn load_or_make<T>(
        &self,
        provider: &str,
        key: &str,
        decode: impl FnOnce(&[u8]) -> Result<T>,
        encode: impl FnOnce(&T) -> Vec<u8>,
        make: impl FnOnce() -> T,
    ) -> T {
        if let Some(v) = self.take(provider, key, decode) {
            return v;
        }
        let v = make();
        self.put(provider, key, &encode(&v));
        v
    }
}

/// Load-or-train against an optional store: with no store attached the
/// artifact is simply built (the `Lab::new` path used by unit tests).
pub(crate) fn cached<T>(
    store: Option<&CkptStore>,
    provider: &str,
    key: &str,
    decode: impl FnOnce(&[u8]) -> Result<T>,
    encode: impl FnOnce(&T) -> Vec<u8>,
    make: impl FnOnce() -> T,
) -> T {
    match store {
        Some(s) => s.load_or_make(provider, key, decode, encode, make),
        None => make(),
    }
}

/// Config-derived fingerprint of the domain corpus (and, transitively, the
/// ontology it is generated from).
pub(crate) fn domain_fp(cfg: &crate::lab::LabConfig) -> String {
    format!("domain(n={},seed={},scale={})", cfg.n_domain_docs, cfg.seed, cfg.scale)
}

/// Config-derived fingerprint of the generic corpus.
pub(crate) fn generic_fp(cfg: &crate::lab::LabConfig) -> String {
    format!("generic(n={},seed={})", cfg.n_generic_docs, cfg.seed ^ 0x9e37)
}

// ---------------------------------------------------------------------------
// Derived-results cache: memoised cell scores, memoised row vectors, forest
// runs and LSTM runs, one payload per full-config digest.
// ---------------------------------------------------------------------------

const DERIVED_MAGIC: &[u8; 4] = b"KCBD";
const DERIVED_VERSION: u32 = 1;

/// In-memory form of the derived-results cache.
#[derive(Default)]
pub(crate) struct Derived {
    /// Memoised scalar scores (`Shared::memo_score`).
    pub scores: Vec<(String, f64)>,
    /// Memoised row vectors (`Shared::memo_vec`).
    pub vecs: Vec<(String, Vec<f64>)>,
    /// Forest runs by `(task, model, adaptation)` key.
    pub forests: Vec<(String, std::sync::Arc<crate::paradigm::ml::ForestRun>)>,
    /// LSTM runs by model name.
    pub lstms: Vec<(String, std::sync::Arc<crate::paradigm::ml::LstmRun>)>,
}

impl Derived {
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.raw(DERIVED_MAGIC);
        w.u32(DERIVED_VERSION);
        w.u32(self.scores.len() as u32);
        for (k, v) in &self.scores {
            w.str(k);
            w.f64(*v);
        }
        w.u32(self.vecs.len() as u32);
        for (k, v) in &self.vecs {
            w.str(k);
            w.f64s(v);
        }
        w.u32(self.forests.len() as u32);
        for (k, run) in &self.forests {
            w.str(k);
            encode_forest_run(run, &mut w);
        }
        w.u32(self.lstms.len() as u32);
        for (k, run) in &self.lstms {
            w.str(k);
            w.str(&run.model_name);
            encode_metrics(&run.metrics, &mut w);
        }
        w.into_bytes()
    }

    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = Reader::new(bytes, "derived cache");
        r.magic(DERIVED_MAGIC)?;
        r.version(DERIVED_VERSION)?;
        let mut out = Self::default();
        let n = r.u32()? as usize;
        r.sized(n, 12)?;
        for _ in 0..n {
            let k = r.str()?;
            out.scores.push((k, r.f64()?));
        }
        let n = r.u32()? as usize;
        r.sized(n, 8)?;
        for _ in 0..n {
            let k = r.str()?;
            out.vecs.push((k, r.f64s()?));
        }
        let n = r.u32()? as usize;
        r.sized(n, 16)?;
        for _ in 0..n {
            let k = r.str()?;
            out.forests.push((k, std::sync::Arc::new(decode_forest_run(&mut r)?)));
        }
        let n = r.u32()? as usize;
        r.sized(n, 40)?;
        for _ in 0..n {
            let k = r.str()?;
            let model_name = r.str()?;
            let metrics = decode_metrics(&mut r)?;
            out.lstms.push((
                k,
                std::sync::Arc::new(crate::paradigm::ml::LstmRun { model_name, metrics }),
            ));
        }
        r.finish()?;
        Ok(out)
    }
}

fn encode_metrics(m: &kcb_ml::metrics::BinaryMetrics, w: &mut Writer) {
    w.f64(m.accuracy);
    w.f64(m.precision);
    w.f64(m.recall);
    w.f64(m.f1);
}

fn decode_metrics(r: &mut Reader<'_>) -> Result<kcb_ml::metrics::BinaryMetrics> {
    Ok(kcb_ml::metrics::BinaryMetrics {
        accuracy: r.f64()?,
        precision: r.f64()?,
        recall: r.f64()?,
        f1: r.f64()?,
    })
}

fn encode_forest_run(run: &crate::paradigm::ml::ForestRun, w: &mut Writer) {
    w.str(&run.encoder_name);
    encode_metrics(&run.metrics, w);
    run.forest.encode(w);
    w.f32s(&run.test_probs);
    w.u32(run.test_labels.len() as u32);
    for &b in &run.test_labels {
        w.u8(b as u8);
    }
    w.u32(run.test_relations.len() as u32);
    for &rel in &run.test_relations {
        w.u8(rel.code());
    }
    w.f64s(&run.importances);
}

fn decode_forest_run(r: &mut Reader<'_>) -> Result<crate::paradigm::ml::ForestRun> {
    let err = |m: &str| kcb_util::Error::parse("derived cache", m.to_string());
    let encoder_name = r.str()?;
    let metrics = decode_metrics(r)?;
    let forest = kcb_ml::RandomForest::decode(r)?;
    let test_probs = r.f32s()?;
    let n = r.u32()? as usize;
    r.sized(n, 1)?;
    let test_labels = (0..n).map(|_| r.u8().map(|b| b != 0)).collect::<Result<Vec<_>>>()?;
    let n = r.u32()? as usize;
    r.sized(n, 1)?;
    let test_relations = (0..n)
        .map(|_| {
            let code = r.u8()?;
            if code as usize >= kcb_ontology::Relation::ALL.len() {
                return Err(err("relation code out of range"));
            }
            Ok(kcb_ontology::Relation::from_code(code))
        })
        .collect::<Result<Vec<_>>>()?;
    let importances = r.f64s()?;
    if test_probs.len() != test_labels.len() || test_labels.len() != test_relations.len() {
        return Err(err("test-set column lengths disagree"));
    }
    Ok(crate::paradigm::ml::ForestRun {
        encoder_name,
        metrics,
        forest,
        test_probs,
        test_labels,
        test_relations,
        importances,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn digest_key_is_stable_and_sensitive() {
        let a = digest_key(1, &["cfg", "corpus"]);
        assert_eq!(a, digest_key(1, &["cfg", "corpus"]));
        assert_eq!(a.len(), 16);
        assert_ne!(a, digest_key(2, &["cfg", "corpus"]), "schema bump must change the key");
        assert_ne!(a, digest_key(1, &["cfg2", "corpus"]));
        assert_ne!(a, digest_key(1, &["cfg", "corpus2"]));
    }

    fn temp_store(name: &str) -> CkptStore {
        let dir = std::env::temp_dir().join(format!("kcb-ckpt-test-{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        CkptStore::open(dir)
    }

    fn decode_u64(b: &[u8]) -> Result<u64> {
        let mut r = Reader::new(b, "test");
        let v = r.u64()?;
        r.finish()?;
        Ok(v)
    }

    #[test]
    fn load_or_make_round_trips_and_counts() {
        let store = temp_store("roundtrip");
        let mut made = 0;
        let encode = |v: &u64| {
            let mut w = Writer::new();
            w.u64(*v);
            w.into_bytes()
        };
        let v = store.load_or_make("unit", "k1", decode_u64, encode, || {
            made += 1;
            99
        });
        assert_eq!((v, made), (99, 1));
        let v = store.load_or_make("unit", "k1", decode_u64, encode, || {
            made += 1;
            0
        });
        assert_eq!((v, made), (99, 1), "second lookup must hit");
        assert_eq!(store.stats(), (1, 1));
        let events = store.events();
        assert_eq!(events.len(), 2);
        assert!(!events[0].hit && events[1].hit);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn cold_store_ignores_existing_but_still_writes() {
        let store = temp_store("cold");
        store.put("unit", "k", &{
            let mut w = Writer::new();
            w.u64(7);
            w.into_bytes()
        });
        let cold = CkptStore::cold(store.dir().to_path_buf());
        let v = cold.load_or_make(
            "unit",
            "k",
            decode_u64,
            |v| {
                let mut w = Writer::new();
                w.u64(*v);
                w.into_bytes()
            },
            || 8,
        );
        assert_eq!(v, 8, "cold mode must retrain");
        // The rewritten entry is visible to a subsequent warm store.
        let warm = CkptStore::open(store.dir().to_path_buf());
        assert_eq!(warm.take("unit", "k", decode_u64), Some(8));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn truncated_checkpoint_falls_back_to_retraining() {
        let store = temp_store("trunc");
        let mut w = Writer::new();
        w.u64(1234);
        store.put("unit", "k", &w.into_bytes());
        // Truncate the real file mid-payload.
        let path = store.dir().join("unit-k.ckpt");
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 3]).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);
        // A fresh write repairs the entry.
        let mut w = Writer::new();
        w.u64(5678);
        store.put("unit", "k", &w.into_bytes());
        assert_eq!(store.take("unit", "k", decode_u64), Some(5678));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn version_flip_and_bit_flip_fall_back() {
        let store = temp_store("flip");
        let mut w = Writer::new();
        w.u64(42);
        store.put("unit", "k", &w.into_bytes());
        let path = store.dir().join("unit-k.ckpt");
        let good = std::fs::read(&path).unwrap();

        // Container-version byte flipped.
        let mut bad = good.clone();
        bad[4] ^= 0xff;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);

        // Payload bit flipped — caught by the checksum.
        let mut bad = good.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), None);

        // Pristine bytes restored — hit again.
        std::fs::write(&path, &good).unwrap();
        assert_eq!(store.take("unit", "k", decode_u64), Some(42));
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn wrong_provider_name_is_rejected() {
        let store = temp_store("name");
        let mut w = Writer::new();
        w.u64(1);
        store.put("unit-a", "k", &w.into_bytes());
        // Copy the file under another provider's name: header mismatch.
        std::fs::copy(store.dir().join("unit-a-k.ckpt"), store.dir().join("unit-b-k.ckpt"))
            .unwrap();
        assert_eq!(store.take("unit-b", "k", decode_u64), None);
        std::fs::remove_dir_all(store.dir()).ok();
    }

    #[test]
    fn derived_cache_round_trips() {
        use kcb_ml::linalg::Matrix;
        let x = Matrix::from_rows((0..30).map(|i| vec![i as f32, (i % 3) as f32]).collect::<Vec<_>>());
        let y: Vec<bool> = (0..30).map(|i| i % 2 == 0).collect();
        let forest = kcb_ml::RandomForest::fit(
            &x,
            &y,
            &kcb_ml::RandomForestConfig { n_trees: 3, n_threads: 1, ..Default::default() },
        );
        let run = crate::paradigm::ml::ForestRun {
            encoder_name: "enc".into(),
            metrics: kcb_ml::metrics::BinaryMetrics {
                accuracy: 0.5,
                precision: 0.25,
                recall: 0.75,
                f1: 0.375,
            },
            forest,
            test_probs: vec![0.1, 0.9],
            test_labels: vec![false, true],
            test_relations: vec![kcb_ontology::Relation::IsA, kcb_ontology::Relation::HasRole],
            importances: vec![0.5, 0.5],
        };
        let d = Derived {
            scores: vec![("rf|1".into(), 0.125)],
            vecs: vec![("icl|1".into(), vec![1.0, -2.5])],
            forests: vec![("1|random|naive".into(), std::sync::Arc::new(run))],
            lstms: vec![(
                "random".into(),
                std::sync::Arc::new(crate::paradigm::ml::LstmRun {
                    model_name: "random".into(),
                    metrics: kcb_ml::metrics::BinaryMetrics {
                        accuracy: 1.0,
                        precision: 1.0,
                        recall: 0.0,
                        f1: 0.0,
                    },
                }),
            )],
        };
        let bytes = d.to_bytes();
        let e = Derived::from_bytes(&bytes).expect("decode");
        assert_eq!(e.scores, d.scores);
        assert_eq!(e.vecs, d.vecs);
        assert_eq!(e.lstms.len(), 1);
        assert_eq!(e.lstms[0].1.model_name, "random");
        assert_eq!(e.forests.len(), 1);
        let (k, run2) = &e.forests[0];
        assert_eq!(k, "1|random|naive");
        assert_eq!(run2.encoder_name, "enc");
        assert_eq!(run2.metrics.f1, 0.375);
        assert_eq!(run2.test_probs, vec![0.1, 0.9]);
        assert_eq!(run2.test_relations, d.forests[0].1.test_relations);
        assert_eq!(
            run2.forest.predict_proba(&[3.0, 1.0]).to_bits(),
            d.forests[0].1.forest.predict_proba(&[3.0, 1.0]).to_bits()
        );
        // Truncations error cleanly.
        for cut in [0, 5, bytes.len() / 2, bytes.len() - 1] {
            assert!(Derived::from_bytes(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }
}
