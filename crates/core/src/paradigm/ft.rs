//! NLP paradigm: fine-tuning the pre-trained mini-BERT (§2.5).
//!
//! Triples become `[CLS] subject [SEP] relation [SEP] object [SEP]`
//! WordPiece sequences; a classification head over `[CLS]` is trained with
//! cross-entropy and Adam — the exact recipe of the paper at mini scale.

use crate::compose::triple_token_ids;
use crate::dataset::Split;
use crate::task::LabeledTriple;
use kcb_lm::{MiniBert, TrainConfig};
use kcb_ml::metrics::{BinaryMetrics, ConfusionMatrix};
use kcb_ontology::Ontology;
use kcb_text::WordPiece;
use serde::Serialize;

/// Result of one fine-tuning run (a Table 4 row).
#[derive(Debug, Clone, Serialize)]
pub struct FtRun {
    /// Dataset sizes `(train, validation, test)`.
    pub sizes: (usize, usize, usize),
    /// Positive-class metrics on the test set (the paper's Table 4 style,
    /// where precision ≠ recall).
    pub metrics: BinaryMetrics,
    /// Validation accuracy (model-selection signal).
    pub validation_accuracy: f64,
    /// Per-epoch training losses.
    pub losses: Vec<f32>,
}

/// Fine-tunes `bert` (in place — snapshot/restore around this call to
/// reuse a pre-trained checkpoint) and evaluates on the split's test set.
pub fn run_fine_tune(
    o: &Ontology,
    split: &Split,
    bert: &MiniBert,
    wp: &WordPiece,
    tc: &TrainConfig,
) -> FtRun {
    let encode = |examples: &[LabeledTriple]| -> Vec<(Vec<u32>, bool)> {
        examples
            .iter()
            .map(|e| {
                let mut ids = triple_token_ids(o, e.triple, wp);
                bert.clamp(&mut ids);
                (ids, e.label)
            })
            .collect()
    };
    let train = encode(&split.train);
    let val = encode(&split.validation);
    let test = encode(&split.test);
    let losses = bert.fine_tune(&train, tc);

    let eval = |set: &[(Vec<u32>, bool)]| -> BinaryMetrics {
        let refs: Vec<&[u32]> = set.iter().map(|(ids, _)| ids.as_slice()).collect();
        let preds = bert.predict_batch(&refs);
        let labels: Vec<bool> = set.iter().map(|(_, l)| *l).collect();
        BinaryMetrics::positive_class(&ConfusionMatrix::from_predictions(&preds, &labels))
    };
    let metrics = eval(&test);
    let validation_accuracy = if val.is_empty() { f64::NAN } else { eval(&val).accuracy };

    FtRun {
        sizes: (split.train.len(), split.validation.len(), split.test.len()),
        metrics,
        validation_accuracy,
        losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;
    use crate::task::{TaskDataset, TaskKind};
    use kcb_lm::{MiniBertConfig, TransformerConfig};
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};
    use kcb_text::{ChemTokenizer, WordPieceTrainer};
    use std::collections::HashMap;

    fn setup() -> (Ontology, Split, MiniBert, WordPiece) {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.005, seed: 77 })
            .unwrap()
            .generate();
        // WordPiece trained over entity-name tokens.
        let tk = ChemTokenizer::new();
        let mut counts: HashMap<String, u64> = HashMap::new();
        for e in o.entities() {
            for t in tk.tokenize(&e.name) {
                *counts.entry(t).or_insert(0) += 1;
            }
        }
        for w in ["is", "a", "has", "role", "part", "of", "conjugate", "base", "acid"] {
            *counts.entry(w.to_string()).or_insert(0) += 50;
        }
        let wp = WordPieceTrainer { target_vocab: 600, min_pair_count: 2 }.train(&counts);
        let bert = MiniBert::new(MiniBertConfig {
            arch: TransformerConfig {
                vocab_size: wp.vocab_size(),
                d_model: 24,
                n_heads: 2,
                n_layers: 2,
                d_ff: 48,
                max_len: 48,
                seed: 5,
            },
            mask_prob: 0.15,
        });
        let d = TaskDataset::generate(&o, TaskKind::FlippedNegatives, 1);
        let d = TaskDataset { task: d.task, examples: d.examples[..700.min(d.len())].to_vec() };
        let split = Split::eight_one_one(&d, 3);
        (o, split, bert, wp)
    }

    #[test]
    fn fine_tuning_learns_direction_task() {
        // Task 2 is the FT paradigm's best task in the paper; even a tiny
        // BERT learns "specific thing [SEP] is a [SEP] general thing" vs
        // its flip well above chance.
        let (o, split, bert, wp) = setup();
        let tc = TrainConfig { epochs: 6, lr: 2e-3, batch_size: 16, seed: 4 };
        let run = run_fine_tune(&o, &split, &bert, &wp, &tc);
        assert_eq!(run.sizes.0, split.train.len());
        assert!(run.metrics.accuracy > 0.75, "FT accuracy {}", run.metrics.accuracy);
        assert!(run.losses.last().unwrap() < &run.losses[0]);
        assert!(run.validation_accuracy > 0.6);
    }

    #[test]
    fn snapshot_restore_resets_fine_tuning() {
        let (o, split, bert, wp) = setup();
        let before = bert.snapshot();
        let p_before = bert.predict_proba(&[2, 10, 11]);
        let tc = TrainConfig { epochs: 1, lr: 2e-3, batch_size: 16, seed: 4 };
        let _ = run_fine_tune(&o, &split, &bert, &wp, &tc);
        let p_after = bert.predict_proba(&[2, 10, 11]);
        assert_ne!(p_before, p_after, "fine-tuning must change the model");
        bert.restore(&before);
        let p_restored = bert.predict_proba(&[2, 10, 11]);
        assert_eq!(p_before, p_restored, "restore must reset weights exactly");
    }
}
