//! NLP paradigm: supervised learning over triple embeddings (Algorithm 1).

use crate::compose::{
    dataset_matrix, dataset_matrix_cached, dataset_sequences, ComponentEncoder, EncodingCache,
};
use crate::dataset::Split;
use crate::task::LabeledTriple;
use kcb_embed::EmbeddingModel;
use kcb_ml::metrics::{roc_auc, BinaryMetrics};
use kcb_ml::{Lstm, LstmConfig, RandomForest, RandomForestConfig};
use kcb_ontology::{Ontology, Relation};
use serde::Serialize;

/// Result of one random-forest run: metrics plus everything the
/// per-relation and feature-importance analyses need.
pub struct ForestRun {
    /// Encoder display name.
    pub encoder_name: String,
    /// Macro-averaged metrics on the test set.
    pub metrics: BinaryMetrics,
    /// The fitted forest.
    pub forest: RandomForest,
    /// Test-set positive-class probabilities.
    pub test_probs: Vec<f32>,
    /// Test-set labels.
    pub test_labels: Vec<bool>,
    /// Test-set relation of each example (for Figure 2).
    pub test_relations: Vec<Relation>,
    /// Normalised feature importances (3 × encoder dim wide).
    pub importances: Vec<f64>,
}

/// Trains a random forest per Algorithm 1 and evaluates it.
pub fn run_forest(
    o: &Ontology,
    train: &[LabeledTriple],
    test: &[LabeledTriple],
    enc: &dyn ComponentEncoder,
    cfg: &RandomForestConfig,
) -> ForestRun {
    run_forest_cached(o, train, test, enc, cfg, None)
}

/// [`run_forest`] with triple encodings memoised through an
/// [`EncodingCache`]. The scenario sweeps (§2.8) call this so the five
/// overlapping splits of a task share encodings instead of re-running the
/// encoder per cell; results are bitwise identical to the uncached path.
pub fn run_forest_cached(
    o: &Ontology,
    train: &[LabeledTriple],
    test: &[LabeledTriple],
    enc: &dyn ComponentEncoder,
    cfg: &RandomForestConfig,
    cache: Option<&EncodingCache>,
) -> ForestRun {
    let encode = |set: &[LabeledTriple]| match cache {
        Some(c) => dataset_matrix_cached(o, set, enc, c),
        None => dataset_matrix(o, set, enc),
    };
    let (x_train, y_train) = encode(train);
    let (x_test, y_test) = encode(test);
    let forest = RandomForest::fit(&x_train, &y_train, cfg);
    let probs = forest.predict_proba_batch(&x_test);
    let preds: Vec<bool> = probs.iter().map(|&p| p >= 0.5).collect();
    let metrics = BinaryMetrics::from_predictions(&preds, &y_test);
    let importances = forest.feature_importances();
    ForestRun {
        encoder_name: enc.name(),
        metrics,
        forest,
        test_probs: probs,
        test_labels: y_test,
        test_relations: test.iter().map(|e| e.triple.relation).collect(),
        importances,
    }
}

/// Convenience wrapper over a [`Split`].
pub fn run_forest_split(
    o: &Ontology,
    split: &Split,
    enc: &dyn ComponentEncoder,
    cfg: &RandomForestConfig,
) -> ForestRun {
    run_forest(o, &split.train, &split.test, enc, cfg)
}

impl ForestRun {
    /// ROC-AUC per relation type over the test set (Figure 2). Relations
    /// with fewer than `min_n` test examples are skipped.
    pub fn auc_by_relation(&self, min_n: usize) -> Vec<(Relation, f64, usize)> {
        let mut out = Vec::new();
        for r in Relation::TASK_SET {
            let idx: Vec<usize> = (0..self.test_relations.len())
                .filter(|&i| self.test_relations[i] == r)
                .collect();
            if idx.len() < min_n {
                continue;
            }
            let scores: Vec<f32> = idx.iter().map(|&i| self.test_probs[i]).collect();
            let labels: Vec<bool> = idx.iter().map(|&i| self.test_labels[i]).collect();
            out.push((r, roc_auc(&scores, &labels), idx.len()));
        }
        out
    }

    /// Importance mass per triple component `[head, relation, tail]`
    /// (Figure A1's pattern).
    pub fn importance_by_component(&self) -> [f64; 3] {
        let d = self.importances.len() / 3;
        let mut out = [0.0f64; 3];
        for (i, v) in self.importances.iter().enumerate() {
            out[(i / d).min(2)] += v;
        }
        out
    }
}

/// Result of one LSTM run (Table A6).
#[derive(Debug, Clone, Serialize)]
pub struct LstmRun {
    /// Model display name.
    pub model_name: String,
    /// Macro-averaged test metrics.
    pub metrics: BinaryMetrics,
}

/// Trains the LSTM branch of Algorithm 1 and evaluates it.
pub fn run_lstm(
    o: &Ontology,
    train: &[LabeledTriple],
    test: &[LabeledTriple],
    model: &dyn EmbeddingModel,
    adaptation: &crate::adapt::Adaptation,
    cfg: &LstmConfig,
) -> LstmRun {
    let (seq_train, y_train) = dataset_sequences(o, train, model, adaptation);
    let (seq_test, y_test) = dataset_sequences(o, test, model, adaptation);
    let lstm = Lstm::fit(&seq_train, &y_train, cfg);
    let preds: Vec<bool> = seq_test.iter().map(|s| lstm.predict(s)).collect();
    LstmRun {
        model_name: format!("{} ({})", model.name(), adaptation.name()),
        metrics: BinaryMetrics::from_predictions(&preds, &y_test),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::Adaptation;
    use crate::compose::TokenAvgEncoder;
    use crate::dataset::Split;
    use crate::task::{TaskDataset, TaskKind};
    use kcb_embed::RandomEmbedding;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn small_setup() -> (Ontology, Split) {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 66 })
            .unwrap()
            .generate();
        let d = TaskDataset::generate(&o, TaskKind::RandomNegatives, 1);
        // Subsample for speed.
        let d = TaskDataset { task: d.task, examples: d.examples[..1200.min(d.len())].to_vec() };
        let split = Split::nine_to_one(&d, 2);
        (o, split)
    }

    #[test]
    fn forest_on_random_embeddings_beats_chance_strongly() {
        let (o, split) = small_setup();
        let model = RandomEmbedding::with_dim(24);
        let enc = TokenAvgEncoder::new(&model, Adaptation::None);
        let cfg = RandomForestConfig { n_trees: 24, n_threads: 2, ..RandomForestConfig::default() };
        let run = run_forest_split(&o, &split, &enc, &cfg);
        assert!(
            run.metrics.f1 > 0.8,
            "task-1 on random embeddings should be strong (paper: 0.956), got {}",
            run.metrics.f1
        );
    }

    #[test]
    fn auc_by_relation_covers_major_relations() {
        let (o, split) = small_setup();
        let model = RandomEmbedding::with_dim(16);
        let enc = TokenAvgEncoder::new(&model, Adaptation::Naive);
        let cfg = RandomForestConfig { n_trees: 16, n_threads: 2, ..RandomForestConfig::default() };
        let run = run_forest_split(&o, &split, &enc, &cfg);
        let aucs = run.auc_by_relation(4);
        assert!(!aucs.is_empty());
        let isa = aucs.iter().find(|(r, _, _)| *r == Relation::IsA).expect("is_a present");
        assert!(isa.1 > 0.8, "is_a AUC {}", isa.1);
        for (_, auc, _) in &aucs {
            assert!((0.0..=1.0).contains(auc));
        }
    }

    #[test]
    fn importances_split_into_three_components() {
        let (o, split) = small_setup();
        let model = RandomEmbedding::with_dim(12);
        let enc = TokenAvgEncoder::new(&model, Adaptation::None);
        let cfg = RandomForestConfig { n_trees: 12, n_threads: 2, ..RandomForestConfig::default() };
        let run = run_forest_split(&o, &split, &enc, &cfg);
        let mass = run.importance_by_component();
        let total: f64 = mass.iter().sum();
        assert!((total - 1.0).abs() < 1e-6, "mass sums to 1, got {total}");
        assert!(mass.iter().all(|&m| m > 0.0), "every component used: {mass:?}");
    }

    #[test]
    fn lstm_runs_and_beats_chance() {
        let (o, split) = small_setup();
        let model = RandomEmbedding::with_dim(12);
        let cfg = LstmConfig { hidden: 12, epochs: 4, ..LstmConfig::default() };
        let run = run_lstm(
            &o,
            &split.train[..400],
            &split.test,
            &model,
            &Adaptation::Naive,
            &cfg,
        );
        assert!(run.metrics.accuracy > 0.6, "LSTM accuracy {}", run.metrics.accuracy);
    }
}
