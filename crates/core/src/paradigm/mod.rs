//! The three NLP-paradigm pipelines (§2.4–§2.6): supervised learning over
//! embeddings ([`ml`]), fine-tuning the mini-BERT ([`ft`]) and in-context
//! learning ([`icl`]).

pub mod ft;
pub mod icl;
pub mod ml;
