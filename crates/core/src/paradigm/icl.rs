//! NLP paradigm: in-context learning (§2.4, §3.2's ICL data rules).
//!
//! This module adapts task datasets into the `kcb-icl` protocol: few-shot
//! examples are drawn from *training* data, queries from held-out data;
//! for the Table 5 experiments queries are restricted to short `is_a`
//! triples exactly as the paper prescribes ("all triples chosen are of the
//! relationship type is_a ... less than 60 tokens").

use crate::dataset::Split;
use crate::task::{LabeledTriple, TaskKind};
use kcb_icl::{FewShotExample, PromptBuilder, PromptItem};
use kcb_ontology::{Ontology, Relation};
use kcb_text::ChemTokenizer;
use kcb_util::Rng;

/// Builds the few-shot example pool (three positive + three negative
/// training triples, §2.4).
pub fn build_examples(o: &Ontology, train: &[LabeledTriple], seed: u64) -> PromptBuilder {
    let mut rng = Rng::seed_stream(seed, 0xe9a);
    let mut pos: Vec<&LabeledTriple> = train.iter().filter(|e| e.label).collect();
    let mut neg: Vec<&LabeledTriple> = train.iter().filter(|e| !e.label).collect();
    assert!(pos.len() >= 3 && neg.len() >= 3, "need ≥3 examples per class");
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    let take = |v: &[&LabeledTriple], label: bool| -> Vec<FewShotExample> {
        v.iter()
            .take(3)
            .map(|e| FewShotExample { text: o.render(e.triple), label })
            .collect()
    };
    PromptBuilder::new(take(&pos, true), take(&neg, false))
}

/// Query-selection policy.
#[derive(Debug, Clone, Copy)]
pub struct QueryPolicy {
    /// Queries per class.
    pub n_per_class: usize,
    /// Restrict to `is_a` triples (the Table 5 setup). The Table 6
    /// head-to-head lifts this restriction (§3.2).
    pub is_a_only: bool,
    /// Maximum rendered-token length ("less than 60 tokens").
    pub max_tokens: usize,
}

impl Default for QueryPolicy {
    fn default() -> Self {
        Self { n_per_class: 50, is_a_only: true, max_tokens: 60 }
    }
}

/// Draws query items from a pool per the policy.
pub fn build_queries(
    o: &Ontology,
    pool: &[LabeledTriple],
    task: TaskKind,
    policy: QueryPolicy,
    seed: u64,
) -> Vec<PromptItem> {
    let tk = ChemTokenizer::new();
    let mut rng = Rng::seed_stream(seed, 0x9e3);
    let mut out = Vec::with_capacity(policy.n_per_class * 2);
    for want_label in [true, false] {
        let mut candidates: Vec<&LabeledTriple> = pool
            .iter()
            .filter(|e| e.label == want_label)
            .filter(|e| !policy.is_a_only || e.triple.relation == Relation::IsA)
            .collect();
        rng.shuffle(&mut candidates);
        let mut taken = 0;
        for e in candidates {
            if taken >= policy.n_per_class {
                break;
            }
            let text = o.render(e.triple);
            if tk.count(&text) >= policy.max_tokens {
                continue;
            }
            out.push(PromptItem {
                text,
                label: e.label,
                task: task.number(),
                key: triple_key(e),
            });
            taken += 1;
        }
        assert!(
            taken > 0,
            "no usable {} queries (pool too small or policy too strict)",
            if want_label { "positive" } else { "negative" }
        );
    }
    rng.shuffle(&mut out);
    out
}

/// Convenience: examples from the training side, queries from the test
/// side of a split.
pub fn split_prompt_setup(
    o: &Ontology,
    split: &Split,
    policy: QueryPolicy,
    seed: u64,
) -> (PromptBuilder, Vec<PromptItem>) {
    let builder = build_examples(o, &split.train, seed);
    let items = build_queries(o, &split.test, split.task, policy, seed);
    (builder, items)
}

fn triple_key(e: &LabeledTriple) -> u64 {
    let (s, r, ob) = e.triple.key();
    kcb_util::fnv1a_u64s(&[u64::from(s), u64::from(r), u64::from(ob), u64::from(e.label)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;
    use crate::task::TaskDataset;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn setup() -> (Ontology, Split) {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 88 })
            .unwrap()
            .generate();
        let d = TaskDataset::generate(&o, TaskKind::RandomNegatives, 1);
        let split = Split::nine_to_one(&d, 2);
        (o, split)
    }

    #[test]
    fn examples_come_from_training_data() {
        let (o, split) = setup();
        let b = build_examples(&o, &split.train, 3);
        assert_eq!(b.n_examples(), 6);
    }

    #[test]
    fn queries_respect_policy() {
        let (o, split) = setup();
        let policy = QueryPolicy { n_per_class: 20, is_a_only: true, max_tokens: 60 };
        let items = build_queries(&o, &split.test, TaskKind::RandomNegatives, policy, 4);
        assert_eq!(items.len(), 40);
        assert_eq!(items.iter().filter(|i| i.label).count(), 20);
        let tk = ChemTokenizer::new();
        for i in &items {
            assert!(i.text.contains(" is a "), "is_a only: {}", i.text);
            assert!(tk.count(&i.text) < 60);
            assert_eq!(i.task, 1);
        }
        // Keys unique.
        let keys: std::collections::HashSet<u64> = items.iter().map(|i| i.key).collect();
        assert_eq!(keys.len(), items.len());
    }

    #[test]
    fn head_to_head_policy_allows_all_relations() {
        let (o, split) = setup();
        let policy = QueryPolicy { n_per_class: 40, is_a_only: false, max_tokens: 200 };
        let items = build_queries(&o, &split.test, TaskKind::RandomNegatives, policy, 5);
        let non_isa = items.iter().filter(|i| !i.text.contains(" is a ")).count();
        assert!(non_isa > 0, "expected some non-is_a queries");
    }

    #[test]
    fn full_icl_round_trip_with_oracle() {
        use kcb_icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant};
        let (o, split) = setup();
        let (builder, items) = split_prompt_setup(
            &o,
            &split,
            QueryPolicy { n_per_class: 25, ..QueryPolicy::default() },
            6,
        );
        let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
        let r = run_protocol(&oracle, &builder, &items, PromptVariant::Base, 5, 7);
        assert!(r.accuracy_mean > 0.8, "gpt-4-sim task-1 accuracy {}", r.accuracy_mean);
        assert!(r.kappa > 0.85);
    }

    #[test]
    fn deterministic() {
        let (o, split) = setup();
        let a = build_queries(&o, &split.test, TaskKind::RandomNegatives, QueryPolicy::default(), 9);
        let b = build_queries(&o, &split.test, TaskKind::RandomNegatives, QueryPolicy::default(), 9);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.key, y.key);
        }
    }
}
