//! The frozen serving snapshot: an `Arc`-shared, read-only view of a warm
//! [`Lab`] that request threads can query without locks.
//!
//! [`Snapshot::freeze`] materialises every provider the serving surface
//! needs (ontology, the chem embedding table and its int8 twin, the
//! classification forest, WordPiece + mini-BERT weights), then seals the
//! results into plain owned storage: averaged-concat component vectors for
//! every entity and relation, WordPiece id sequences for every component,
//! an `Arc<ForestRun>` handle, and a `Send`-able clone of the pre-trained
//! BERT weight snapshot. After freezing, the hot query path touches only
//! immutable memory — `OnceLock::get` fast paths, slice indexing and the
//! SIMD cosine kernels — so any number of threads can share one snapshot
//! ([`Snapshot`] is `Send + Sync` by construction, asserted below).
//!
//! Determinism contract: every query answer is a pure function of the lab
//! seed. The pre-encoded vectors are produced by the *same*
//! [`TokenAvgEncoder`] the serial paths use, the batched scans call the
//! same cosine kernels in the same per-query order, and the BERT weights
//! are the byte-identical pre-trained snapshot — so a batched, multi-thread
//! server returns exactly the bytes a single-threaded loop would.

use crate::compose::{ComponentEncoder, TokenAvgEncoder};
use crate::lab::{Lab, Shared};
use crate::paradigm::ml::ForestRun;
use crate::task::TaskKind;
use kcb_embed::{EmbeddingModel, EmbeddingTable, QuantizedEmbeddingTable};
use kcb_lm::{MiniBert, MiniBertConfig};
use kcb_ml::linalg::Matrix;
use kcb_ontology::Relation;
use kcb_text::wordpiece::special;
use serde_json::Value;
use std::collections::HashMap;
use std::sync::Arc;

/// What to seal into a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct SnapshotSpec {
    /// Task whose canonical split trains the classification forest.
    pub task: TaskKind,
    /// Embedding model backing classification (a name from
    /// [`crate::lab::EMBEDDING_NAMES`]).
    pub model: String,
    /// Adaptation kind for classification (`"none"` / `"naive"` /
    /// `"task-oriented"`).
    pub adapt: String,
    /// Whether to seal the mini-BERT weights for the `bert-cls` path.
    pub bert: bool,
}

impl Default for SnapshotSpec {
    /// Mirrors the `bench-query` classification leg: Task 1, glove-chem,
    /// naive adaptation, with the BERT path enabled.
    fn default() -> Self {
        Self {
            task: TaskKind::RandomNegatives,
            model: "glove-chem".to_string(),
            adapt: "naive".to_string(),
            bert: true,
        }
    }
}

/// Sealed mini-BERT state: config plus the pre-trained weight snapshot.
/// The model itself is `!Send` (`Rc` autograd tape), so worker threads
/// rebuild a thread-local [`MiniBert`] from these weights instead.
pub struct BertWeights {
    cfg: MiniBertConfig,
    weights: Arc<Vec<Matrix>>,
}

impl BertWeights {
    /// Builds a thread-local model holding exactly the sealed weights.
    /// The result scores sequences byte-identically to the driver-thread
    /// model the weights were cloned from.
    pub fn instantiate(&self) -> MiniBert {
        let bert = MiniBert::new(self.cfg);
        bert.restore(&self.weights);
        bert
    }

    /// The sealed weight matrices.
    pub fn weights(&self) -> &[Matrix] {
        &self.weights
    }
}

/// An immutable, `Arc`-shareable serving snapshot of a warm lab.
pub struct Snapshot {
    shared: Arc<Shared>,
    spec: SnapshotSpec,
    quant: QuantizedEmbeddingTable,
    forest: Arc<ForestRun>,
    /// Averaged-concat component vector per entity, row-major
    /// (`n_entities × dim`), produced by the serial encoder at freeze time.
    ent_vecs: Vec<f32>,
    /// Component vector per relation (`Relation::ALL` order).
    rel_vecs: Vec<f32>,
    /// Component width (the embedding dim).
    dim: usize,
    /// WordPiece ids per entity name (no specials), for `bert-cls`.
    ent_ids: Vec<Vec<u32>>,
    /// WordPiece ids per relation phrase.
    rel_ids: Vec<Vec<u32>>,
    bert: Option<BertWeights>,
    artifacts: HashMap<String, Value>,
}

// The whole point of the snapshot: one instance, many request threads.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();
};

impl Snapshot {
    /// Materialises everything `spec` names and freezes it. Driver-thread
    /// only (the BERT provider is `!Send`); the returned snapshot is
    /// `Send + Sync`.
    pub fn freeze(lab: &Lab, spec: SnapshotSpec) -> Self {
        let _span = kcb_obs::span("serve", "snapshot.freeze");
        let shared = lab.shared_arc();
        let o = shared.ontology();
        let table = shared.glove_chem();
        let quant = QuantizedEmbeddingTable::quantize(table);
        let forest = shared.forest_run(spec.task, &spec.model, &spec.adapt);

        // Pre-encode every component through the serial encoder so the
        // frozen vectors are bit-equal to what `compose::triple_vector`
        // produces on demand.
        let model = shared.embedding(&spec.model);
        let adaptation = shared.adaptation(&spec.adapt, &spec.model);
        let enc = TokenAvgEncoder::new(model, adaptation);
        let dim = enc.dim();
        let n_ent = o.entities().len();
        let mut ent_vecs = vec![0.0f32; n_ent * dim];
        for (i, chunk) in ent_vecs.chunks_mut(dim).enumerate() {
            enc.encode_component(o.name(kcb_ontology::EntityId(i as u32)), chunk);
        }
        let mut rel_vecs = vec![0.0f32; Relation::ALL.len() * dim];
        for (r, chunk) in Relation::ALL.iter().zip(rel_vecs.chunks_mut(dim)) {
            enc.encode_component(r.phrase(), chunk);
        }

        let (ent_ids, rel_ids, bert) = if spec.bert {
            let wp = shared.wordpiece();
            let tk = kcb_text::ChemTokenizer::new();
            let encode = |text: &str| -> Vec<u32> {
                let words = tk.tokenize(text);
                wp.encode_words(words.iter().map(String::as_str))
            };
            let ent_ids = (0..n_ent)
                .map(|i| encode(o.name(kcb_ontology::EntityId(i as u32))))
                .collect();
            let rel_ids = Relation::ALL.iter().map(|r| encode(r.phrase())).collect();
            let (bert_model, weights) = lab.bert();
            let bert = BertWeights {
                cfg: *bert_model.config(),
                weights: Arc::new(weights.clone()),
            };
            (ent_ids, rel_ids, Some(bert))
        } else {
            (Vec::new(), Vec::new(), None)
        };

        Self {
            shared,
            spec,
            quant,
            forest,
            ent_vecs,
            rel_vecs,
            dim,
            ent_ids,
            rel_ids,
            bert,
            artifacts: HashMap::new(),
        }
    }

    /// Inserts a pre-rendered artifact payload (the `write_json` wrapper
    /// shape) served by id. Pre-seal only — takes `&mut self`.
    pub fn add_artifact(&mut self, id: impl Into<String>, payload: Value) {
        self.artifacts.insert(id.into(), payload);
    }

    /// The shared core the snapshot was frozen from.
    pub fn shared(&self) -> &Shared {
        &self.shared
    }

    /// The freeze specification.
    pub fn spec(&self) -> &SnapshotSpec {
        &self.spec
    }

    /// The sealed f32 nearest-neighbour table (the chem GloVe table).
    pub fn table(&self) -> &EmbeddingTable {
        self.shared.glove_chem()
    }

    /// The sealed int8 twin of [`Snapshot::table`].
    pub fn quant(&self) -> &QuantizedEmbeddingTable {
        &self.quant
    }

    /// The sealed classification forest run.
    pub fn forest(&self) -> &Arc<ForestRun> {
        &self.forest
    }

    /// Sealed BERT weights, when the spec asked for them.
    pub fn bert(&self) -> Option<&BertWeights> {
        self.bert.as_ref()
    }

    /// Entity count (valid subject/object ids are `0..n_entities`).
    pub fn n_entities(&self) -> usize {
        self.ent_vecs.len() / self.dim.max(1)
    }

    /// Component vector width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Whether `(s, r, o)` names a well-formed triple for this ontology.
    pub fn valid_triple(&self, s: u32, r: u8, o: u32) -> bool {
        let n = self.n_entities() as u32;
        s < n && o < n && (r as usize) < Relation::ALL.len()
    }

    /// A pre-rendered artifact payload by id.
    pub fn artifact(&self, id: &str) -> Option<&Value> {
        self.artifacts.get(id)
    }

    /// Ids of the pre-rendered artifacts, sorted.
    pub fn artifact_ids(&self) -> Vec<&str> {
        let mut ids: Vec<&str> = self.artifacts.keys().map(String::as_str).collect();
        ids.sort_unstable();
        ids
    }

    /// Embedding-table row for a token: `(vector, in_vocab)`. Out-of-vocab
    /// tokens get the deterministic OOV vector, mirroring the training
    /// paths' policy.
    pub fn embed(&self, token: &str) -> (Vec<f32>, bool) {
        let t = self.table();
        let mut out = vec![0.0f32; t.dim()];
        let lookup = kcb_embed::embed_or_random(t, token, &mut out);
        (out, lookup.in_vocab())
    }

    /// Serial-reference nearest neighbours (delegates to
    /// [`EmbeddingTable::nearest`]).
    pub fn nearest(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        self.table().nearest(token, k)
    }

    /// Serial-reference int8 nearest neighbours.
    pub fn nearest_int8(&self, token: &str, k: usize) -> Vec<(String, f32)> {
        self.quant.nearest(token, k)
    }

    /// Batched nearest-neighbour scan: one pass over the vocabulary serves
    /// every query in `tokens`, loading each candidate row once instead of
    /// once per query. Calls the same cosine kernel with the same operands
    /// as the serial path, so each per-query result is byte-identical to
    /// [`Snapshot::nearest`] / [`Snapshot::nearest_int8`].
    pub fn nearest_batch(
        &self,
        tokens: &[&str],
        k: usize,
        int8: bool,
    ) -> Vec<Vec<(String, f32)>> {
        let vocab = if int8 { self.quant.vocab() } else { self.table().vocab() };
        let n = vocab.len() as u32;
        let qids: Vec<Option<u32>> = tokens.iter().map(|t| vocab.id(t)).collect();
        let mut sims: Vec<Vec<(u32, f32)>> = qids
            .iter()
            .map(|q| {
                q.map(|_| Vec::with_capacity(n.saturating_sub(1) as usize)).unwrap_or_default()
            })
            .collect();
        for i in 0..n {
            for (j, q) in qids.iter().enumerate() {
                let Some(id) = *q else { continue };
                if i == id {
                    continue;
                }
                let s = if int8 {
                    let m = self.quant.matrix();
                    kcb_ml::quant::cosine_i8(m.row(id as usize), m.row(i as usize)) as f32
                } else {
                    let t = self.table();
                    kcb_ml::linalg::cosine(t.vector(id), t.vector(i))
                };
                sims[j].push((i, s));
            }
        }
        sims.into_iter()
            .map(|mut s| {
                // Identical finish to the serial `nearest`: stable sort on
                // the same floats in the same candidate order.
                s.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("NaN similarity"));
                s.truncate(k);
                s.into_iter().map(|(i, v)| (vocab.token(i).to_string(), v)).collect()
            })
            .collect()
    }

    /// Writes the averaged-concat feature vector of `(s, r, o)` into `out`
    /// (sized `3 * dim`) from the pre-encoded components — bit-equal to
    /// [`compose::triple_vector`] through the serial encoder. Returns
    /// `false` (leaving `out` untouched) for out-of-range ids.
    pub fn triple_vector_into(&self, s: u32, r: u8, o: u32, out: &mut [f32]) -> bool {
        if !self.valid_triple(s, r, o) {
            return false;
        }
        let d = self.dim;
        debug_assert_eq!(out.len(), 3 * d);
        let ent = |i: u32| &self.ent_vecs[i as usize * d..(i as usize + 1) * d];
        out[..d].copy_from_slice(ent(s));
        out[d..2 * d].copy_from_slice(&self.rel_vecs[r as usize * d..(r as usize + 1) * d]);
        out[2 * d..].copy_from_slice(ent(o));
        true
    }

    /// Forest positive-class probability for one triple, or `None` for
    /// out-of-range ids.
    pub fn classify(&self, s: u32, r: u8, o: u32) -> Option<f32> {
        let mut v = vec![0.0f32; 3 * self.dim];
        self.triple_vector_into(s, r, o, &mut v).then(|| self.forest.forest.predict_proba(&v))
    }

    /// Batched classification: one scratch vector serves the whole batch.
    /// Per-triple results equal [`Snapshot::classify`] exactly.
    pub fn classify_batch(&self, triples: &[(u32, u8, u32)]) -> Vec<Option<f32>> {
        let mut v = vec![0.0f32; 3 * self.dim];
        triples
            .iter()
            .map(|&(s, r, o)| {
                self.triple_vector_into(s, r, o, &mut v)
                    .then(|| self.forest.forest.predict_proba(&v))
            })
            .collect()
    }

    /// WordPiece id sequence of a triple for the BERT path — bit-equal to
    /// [`compose::triple_token_ids`]. `None` for out-of-range ids or a
    /// snapshot frozen without BERT.
    pub fn bert_token_ids(&self, s: u32, r: u8, o: u32) -> Option<Vec<u32>> {
        if self.bert.is_none() || !self.valid_triple(s, r, o) {
            return None;
        }
        let mut ids = vec![special::CLS];
        for part in [&self.ent_ids[s as usize], &self.rel_ids[r as usize], &self.ent_ids[o as usize]]
        {
            ids.extend_from_slice(part);
            ids.push(special::SEP);
        }
        Some(ids)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adapt::Adaptation;
    use crate::compose;
    use crate::lab::LabConfig;

    fn snapshot() -> (Lab, Snapshot) {
        let lab = Lab::new(LabConfig::tiny());
        let snap = Snapshot::freeze(&lab, SnapshotSpec::default());
        (lab, snap)
    }

    #[test]
    fn frozen_vectors_match_the_serial_encoder() {
        let (lab, snap) = snapshot();
        let shared = lab.shared();
        let o = shared.ontology();
        let enc = TokenAvgEncoder::new(shared.embedding("glove-chem"), Adaptation::Naive);
        let split = shared.split(TaskKind::RandomNegatives);
        let mut out = vec![0.0f32; 3 * snap.dim()];
        for e in split.test.iter().take(16) {
            let t = e.triple;
            let want = compose::triple_vector(o, t, &enc);
            assert!(snap.triple_vector_into(t.subject.0, t.relation.code(), t.object.0, &mut out));
            assert_eq!(out, want, "frozen vector differs for {}", o.render(t));
            let want_ids = compose::triple_token_ids(o, t, shared.wordpiece());
            let got_ids = snap.bert_token_ids(t.subject.0, t.relation.code(), t.object.0).unwrap();
            assert_eq!(got_ids, want_ids);
        }
    }

    #[test]
    fn classify_matches_the_serial_forest_path() {
        let (lab, snap) = snapshot();
        let shared = lab.shared();
        let o = shared.ontology();
        let enc = TokenAvgEncoder::new(shared.embedding("glove-chem"), Adaptation::Naive);
        let forest = shared.forest_run(TaskKind::RandomNegatives, "glove-chem", "naive");
        let split = shared.split(TaskKind::RandomNegatives);
        let triples: Vec<(u32, u8, u32)> = split
            .test
            .iter()
            .take(12)
            .map(|e| (e.triple.subject.0, e.triple.relation.code(), e.triple.object.0))
            .collect();
        let batch = snap.classify_batch(&triples);
        for (e, got) in split.test.iter().take(12).zip(batch) {
            let v = compose::triple_vector(o, e.triple, &enc);
            let want = forest.forest.predict_proba(&v);
            assert_eq!(got, Some(want));
        }
        assert_eq!(snap.classify(0, 0, u32::MAX), None);
        assert_eq!(snap.classify(0, 200, 0), None);
    }

    #[test]
    fn batched_nn_equals_the_serial_scan() {
        let (_lab, snap) = snapshot();
        let vocab = snap.table().vocab();
        let toks: Vec<String> =
            (0..8.min(vocab.len()) as u32).map(|i| vocab.token(i).to_string()).collect();
        let mut queries: Vec<&str> = toks.iter().map(String::as_str).collect();
        queries.push("definitely-not-a-token");
        for int8 in [false, true] {
            let batch = snap.nearest_batch(&queries, 10, int8);
            for (q, got) in queries.iter().zip(&batch) {
                let want = if int8 { snap.nearest_int8(q, 10) } else { snap.nearest(q, 10) };
                assert_eq!(*got, want, "int8={int8} query={q}");
            }
            assert!(batch.last().unwrap().is_empty(), "OOV query yields no neighbours");
        }
    }

    #[test]
    fn bert_weights_rebuild_byte_identical_models() {
        let (lab, snap) = snapshot();
        let handle = snap.bert().expect("spec sealed bert");
        let local = handle.instantiate();
        let (driver, _) = lab.bert();
        let ids = snap.bert_token_ids(0, 0, 1).unwrap();
        assert_eq!(local.predict_proba(&ids), driver.predict_proba(&ids));
    }

    #[test]
    fn artifacts_are_served_by_id() {
        let lab = Lab::new(LabConfig::tiny());
        let mut snap = Snapshot::freeze(
            &lab,
            SnapshotSpec { bert: false, ..SnapshotSpec::default() },
        );
        assert!(snap.bert().is_none());
        assert_eq!(snap.bert_token_ids(0, 0, 1), None);
        snap.add_artifact("table2", serde_json::json!({"id": "table2"}));
        assert!(snap.artifact("table2").is_some());
        assert!(snap.artifact("nope").is_none());
        assert_eq!(snap.artifact_ids(), vec!["table2"]);
    }
}
