//! Dependency-aware cell scheduler for the reproduction pipeline.
//!
//! [`Graph`] holds a DAG of jobs. A job is either **parallel** (`Send`
//! closure, runnable on any worker thread — forest fits, scenario-sweep
//! cells, embedding training) or **driver-only** (non-`Send` closure that
//! must run on the thread that called [`Graph::run`] — anything touching
//! the `Rc`-autograd MiniBERT/BioGPT checkpoints). Dependencies always
//! point at earlier ids, so push order is a valid topological order and
//! the single-worker path degenerates to plain sequential execution in
//! exactly that order.
//!
//! With `workers > 1` the graph runs on scoped worker threads with
//! per-worker LIFO deques, FIFO stealing, and a shared injector queue;
//! the driver thread drains driver-only jobs and helps with parallel
//! jobs while it waits. Parallel jobs executing on a multi-worker run
//! hold a [`pool::CoreReservation`] and are pinned to
//! [`pool::run_serial`], so nested LM/forest fan-out yields to
//! cell-level parallelism (and driver-side LM kernels see the reserved
//! cores subtracted from their own fan-out).
//!
//! Determinism contract: jobs communicate only through write-once slots
//! and memoised caches whose values are independent of scheduling, and
//! callers assemble outputs in push order from the slots afterwards —
//! the scheduler itself never reorders observable results.
//!
//! Telemetry: when the [`kcb_obs`] recorder is enabled, every job emits a
//! span (categorised by its label prefix, annotated with worker id and
//! kind) into the executing thread's buffer, steals emit instant events,
//! and queue promotions are counted — all out-of-band of the job
//! closures, so recording can never perturb artifact bytes. The
//! per-thread buffers are merged only after [`Graph::run`] returns, at
//! `kcb_obs::drain()` time, so instrumentation adds no cross-worker
//! contention.

use kcb_util::pool;
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::Condvar;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// Span category for a job label: providers/cells/artifacts get their own
/// trace categories, anything else files under the scheduler itself.
fn cat_for(label: &str) -> &'static str {
    if label.starts_with("provider:") {
        "provider"
    } else if label.starts_with("cell:") {
        "cell"
    } else if label.starts_with("artifact:") {
        "artifact"
    } else {
        "sched"
    }
}

/// Handle to a job pushed onto a [`Graph`]; used to declare dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct JobId(usize);

/// Completion notice passed to a [`Graph::run_hooked`] hook right after a
/// job's closure returns successfully — the attachment point for the run
/// journal, which appends (and fsyncs) one record per completed job.
#[derive(Debug, Clone)]
pub struct JobDone<'r> {
    /// Push-order index of the job.
    pub index: usize,
    /// The label given at push time.
    pub label: &'r str,
    /// `"par"` or `"driver"`.
    pub kind: &'static str,
    /// Wall-clock seconds inside the closure.
    pub seconds: f64,
    /// Worker that executed the job (0 = the driver thread).
    pub worker: usize,
}

/// Job-completion hook. Runs on the executing worker's thread (hence
/// `Sync`), after the job's own work and timing but before dependents are
/// promoted — so anything the hook persists is durable before downstream
/// jobs can observe the result.
pub type DoneHook<'h> = dyn Fn(&JobDone<'_>) + Sync + 'h;

type ParFn<'a> = Box<dyn FnOnce() + Send + 'a>;
type DriverFn<'a> = Box<dyn FnOnce() + 'a>;

enum Slot {
    /// Index into the shared parallel-closure table.
    Par(usize),
    /// Index into the driver-local closure table.
    Driver(usize),
}

struct Node {
    label: String,
    slot: Slot,
    deps: Vec<usize>,
}

/// Per-job execution record, in push (= canonical) order.
#[derive(Debug, Clone, serde::Serialize)]
pub struct JobReport {
    /// The label given at push time.
    pub label: String,
    /// `"par"` or `"driver"`.
    pub kind: &'static str,
    /// Wall-clock seconds spent inside the closure (`end - start`).
    pub seconds: f64,
    /// Seconds from graph start when the closure began.
    pub start: f64,
    /// Seconds from graph start when the closure returned.
    pub end: f64,
    /// Worker that executed the job (0 = the driver thread).
    pub worker: usize,
}

/// Start/end offsets (seconds from graph start) and executing worker.
#[derive(Debug, Clone, Copy, Default)]
struct Timing {
    start: f64,
    end: f64,
    worker: usize,
}

/// Records a job span into the executing thread's `kcb_obs` buffer.
fn record_job_span(label: &str, kind: &'static str, epoch_us: u64, t: Timing) {
    if !kcb_obs::enabled() {
        return;
    }
    kcb_obs::record_span(
        cat_for(label),
        label,
        epoch_us + (t.start * 1e6) as u64,
        ((t.end - t.start).max(0.0) * 1e6) as u64,
        vec![("worker", t.worker.to_string()), ("kind", kind.to_string())],
    );
}

/// What one [`Graph::run`] did.
#[derive(Debug, Clone, serde::Serialize)]
pub struct RunReport {
    /// Worker threads used (1 = sequential driver-only execution).
    pub workers: usize,
    /// Per-job timings in push order.
    pub jobs: Vec<JobReport>,
    /// Successful steals from another worker's local deque.
    pub steals: usize,
    /// End-to-end wall-clock seconds for the whole graph.
    pub wall_seconds: f64,
}

/// A DAG of labelled jobs. See the module docs for the execution model.
#[derive(Default)]
pub struct Graph<'a> {
    nodes: Vec<Node>,
    par_fns: Vec<Option<ParFn<'a>>>,
    driver_fns: Vec<Option<DriverFn<'a>>>,
}

impl<'a> Graph<'a> {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of jobs pushed so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no jobs have been pushed.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The label of an already-pushed job (for provenance maps that key
    /// journal input digests by dependency label).
    pub fn label_of(&self, id: JobId) -> &str {
        &self.nodes[id.0].label
    }

    fn push(&mut self, label: String, slot: Slot, deps: &[JobId]) -> JobId {
        let id = self.nodes.len();
        for d in deps {
            assert!(d.0 < id, "dependency {} of job {id} not yet pushed", d.0);
        }
        self.nodes.push(Node { label, slot, deps: deps.iter().map(|d| d.0).collect() });
        JobId(id)
    }

    /// Pushes a parallel job: may run on any worker thread once all
    /// `deps` have finished.
    pub fn add_par(
        &mut self,
        label: impl Into<String>,
        deps: &[JobId],
        f: impl FnOnce() + Send + 'a,
    ) -> JobId {
        self.par_fns.push(Some(Box::new(f)));
        self.push(label.into(), Slot::Par(self.par_fns.len() - 1), deps)
    }

    /// Pushes a driver-only job: runs on the thread that calls
    /// [`Graph::run`] (for `!Send` state such as the LM checkpoints).
    pub fn add_driver(
        &mut self,
        label: impl Into<String>,
        deps: &[JobId],
        f: impl FnOnce() + 'a,
    ) -> JobId {
        self.driver_fns.push(Some(Box::new(f)));
        self.push(label.into(), Slot::Driver(self.driver_fns.len() - 1), deps)
    }

    /// Executes the whole graph and returns the run report. Panics in
    /// jobs are re-raised here after the scope unwinds.
    pub fn run(self, workers: usize) -> RunReport {
        self.run_hooked(workers, None)
    }

    /// [`Graph::run`] with an optional per-job completion hook (see
    /// [`DoneHook`]); the journal attaches here.
    pub fn run_hooked(self, workers: usize, hook: Option<&DoneHook<'_>>) -> RunReport {
        let started = Instant::now();
        let epoch_us = kcb_obs::now_us();
        let n = self.nodes.len();
        let label_kinds = self.label_kinds();
        let mut timing = vec![Timing::default(); n];
        let (steals, workers) = if workers <= 1 || n <= 1 {
            self.run_sequential(started, epoch_us, &mut timing, hook);
            (0, 1)
        } else {
            (self.run_parallel(workers, started, epoch_us, &mut timing, hook), workers)
        };
        let jobs = label_kinds
            .into_iter()
            .zip(timing)
            .map(|((label, kind), t)| JobReport {
                label,
                kind,
                seconds: (t.end - t.start).max(0.0),
                start: t.start,
                end: t.end,
                worker: t.worker,
            })
            .collect();
        RunReport { workers, jobs, steals, wall_seconds: started.elapsed().as_secs_f64() }
    }

    fn run_sequential(
        self,
        t0: Instant,
        epoch_us: u64,
        timing: &mut [Timing],
        hook: Option<&DoneHook<'_>>,
    ) {
        kcb_obs::set_thread_label("driver");
        let Graph { nodes, mut par_fns, mut driver_fns } = self;
        for (i, node) in nodes.into_iter().enumerate() {
            let start = t0.elapsed().as_secs_f64();
            let kind = match node.slot {
                Slot::Par(_) => "par",
                Slot::Driver(_) => "driver",
            };
            match node.slot {
                Slot::Par(p) => (par_fns[p].take().expect("par job present"))(),
                Slot::Driver(d) => (driver_fns[d].take().expect("driver job present"))(),
            }
            let end = t0.elapsed().as_secs_f64();
            timing[i] = Timing { start, end, worker: 0 };
            record_job_span(&node.label, kind, epoch_us, timing[i]);
            if let Some(h) = hook {
                h(&JobDone {
                    index: i,
                    label: &node.label,
                    kind,
                    seconds: (end - start).max(0.0),
                    worker: 0,
                });
            }
        }
    }

    fn run_parallel(
        self,
        workers: usize,
        t0: Instant,
        epoch_us: u64,
        timing: &mut [Timing],
        hook: Option<&DoneHook<'_>>,
    ) -> usize {
        let Graph { nodes, par_fns, mut driver_fns } = self;
        let n = nodes.len();

        let pending: Vec<usize> = nodes.iter().map(|nd| nd.deps.len()).collect();
        let mut dependents: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, nd) in nodes.iter().enumerate() {
            for &d in &nd.deps {
                dependents[d].push(i);
            }
        }
        let mut state = State {
            pending,
            dependents,
            injector: VecDeque::new(),
            ready_driver: VecDeque::new(),
            remaining: n,
            panic: None,
        };
        // Seed the ready queues with dep-free jobs, in push order.
        for (i, nd) in nodes.iter().enumerate() {
            if state.pending[i] == 0 {
                match nd.slot {
                    Slot::Par(_) => state.injector.push_back(i),
                    Slot::Driver(_) => state.ready_driver.push_back(i),
                }
            }
        }

        let shared = Shared {
            nodes,
            par_fns: par_fns.into_iter().map(Mutex::new).collect(),
            locals: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            timing: (0..n).map(|_| Mutex::new(Timing::default())).collect(),
            state: Mutex::new(state),
            cv: Condvar::new(),
            steals: AtomicUsize::new(0),
            t0,
            epoch_us,
            hook,
        };

        std::thread::scope(|s| {
            // Workers 1..workers steal and run parallel jobs; worker 0 is
            // the driver (this thread), which also owns the driver jobs.
            for w in 1..workers {
                let shared = &shared;
                s.spawn(move || shared.worker_loop(w));
            }
            shared.driver_loop(&mut driver_fns);
        });

        for (dst, src) in timing.iter_mut().zip(&shared.timing) {
            *dst = *src.lock();
        }
        if let Some(payload) = shared.state.lock().panic.take() {
            resume_unwind(payload);
        }
        shared.steals.load(Ordering::Relaxed)
    }

    fn label_kinds(&self) -> Vec<(String, &'static str)> {
        self.nodes
            .iter()
            .map(|nd| {
                (nd.label.clone(), match nd.slot {
                    Slot::Par(_) => "par",
                    Slot::Driver(_) => "driver",
                })
            })
            .collect()
    }
}

struct State {
    pending: Vec<usize>,
    dependents: Vec<Vec<usize>>,
    /// Global FIFO of ready parallel jobs not yet claimed by a local deque.
    injector: VecDeque<usize>,
    /// Ready driver-only jobs (popped only by the driver thread).
    ready_driver: VecDeque<usize>,
    remaining: usize,
    panic: Option<Box<dyn std::any::Any + Send>>,
}

struct Shared<'a> {
    nodes: Vec<Node>,
    par_fns: Vec<Mutex<Option<ParFn<'a>>>>,
    locals: Vec<Mutex<VecDeque<usize>>>,
    timing: Vec<Mutex<Timing>>,
    state: Mutex<State>,
    cv: Condvar,
    steals: AtomicUsize,
    /// Graph start, shared so every thread reports offsets on one clock.
    t0: Instant,
    /// Recorder-epoch microseconds at graph start, for span timestamps.
    epoch_us: u64,
    /// Optional completion hook, fired on the executing thread after each
    /// successful job and before its dependents are promoted.
    hook: Option<&'a DoneHook<'a>>,
}

impl Shared<'_> {
    /// Runs one parallel job on worker `w`: reserve a core and pin nested
    /// kernels to serial so cell-level parallelism wins the machine.
    fn run_par(&self, i: usize, w: usize) {
        let p = match self.nodes[i].slot {
            Slot::Par(p) => p,
            Slot::Driver(_) => unreachable!("driver job in par path"),
        };
        let f = self.par_fns[p].lock().take().expect("par job claimed twice");
        let _core = pool::CoreReservation::claim();
        let start = self.t0.elapsed().as_secs_f64();
        let result = catch_unwind(AssertUnwindSafe(|| pool::run_serial(f)));
        let t = Timing { start, end: self.t0.elapsed().as_secs_f64(), worker: w };
        *self.timing[i].lock() = t;
        record_job_span(&self.nodes[i].label, "par", self.epoch_us, t);
        if result.is_ok() {
            if let Some(h) = self.hook {
                h(&JobDone {
                    index: i,
                    label: &self.nodes[i].label,
                    kind: "par",
                    seconds: (t.end - t.start).max(0.0),
                    worker: w,
                });
            }
        }
        self.finish(i, w, result);
    }

    /// Marks job `i` done, promoting newly-ready jobs. The first
    /// newly-ready parallel job goes to worker `w`'s own deque (LIFO
    /// locality); the rest go to the injector.
    fn finish(&self, i: usize, w: usize, result: Result<(), Box<dyn std::any::Any + Send>>) {
        let mut st = self.state.lock();
        match result {
            Ok(()) => {
                let mut kept_local = false;
                let deps_of: Vec<usize> = st.dependents[i].clone();
                for j in deps_of {
                    st.pending[j] -= 1;
                    if st.pending[j] == 0 {
                        match self.nodes[j].slot {
                            Slot::Par(_) if !kept_local => {
                                kept_local = true;
                                self.locals[w].lock().push_back(j);
                                kcb_obs::counter("sched.local_pushes", 1);
                            }
                            Slot::Par(_) => {
                                st.injector.push_back(j);
                                kcb_obs::counter("sched.injector_pushes", 1);
                            }
                            Slot::Driver(_) => st.ready_driver.push_back(j),
                        }
                    }
                }
            }
            Err(payload) => {
                if st.panic.is_none() {
                    st.panic = Some(payload);
                }
            }
        }
        st.remaining -= 1;
        drop(st);
        self.cv.notify_all();
    }

    /// Next parallel job for worker `w`: own deque (LIFO) → steal others
    /// (FIFO, scanning `w+1, w+2, …` wrapping) → injector.
    fn next_par(&self, w: usize) -> Option<usize> {
        if let Some(i) = self.locals[w].lock().pop_back() {
            return Some(i);
        }
        let k = self.locals.len();
        for off in 1..k {
            if let Some(i) = self.locals[(w + off) % k].lock().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                kcb_obs::counter("sched.steals", 1);
                kcb_obs::instant("sched", "steal");
                return Some(i);
            }
        }
        self.state.lock().injector.pop_front()
    }

    fn worker_loop(&self, w: usize) {
        kcb_obs::set_thread_label(format!("worker-{w}"));
        loop {
            if let Some(i) = self.next_par(w) {
                self.run_par(i, w);
                continue;
            }
            let st = self.state.lock();
            if st.remaining == 0 || st.panic.is_some() {
                return;
            }
            // Timed wait: steals from peer deques are not signalled
            // through the state condvar, so retry periodically.
            drop(self.cv.wait_timeout(st, Duration::from_millis(2)));
        }
    }

    /// The calling thread: owns the driver-only closures, helps with
    /// parallel jobs while waiting on dependencies.
    fn driver_loop(&self, driver_fns: &mut [Option<DriverFn<'_>>]) {
        const W: usize = 0;
        kcb_obs::set_thread_label("driver");
        loop {
            let next_driver = {
                let mut st = self.state.lock();
                if st.remaining == 0 || st.panic.is_some() {
                    return;
                }
                st.ready_driver.pop_front()
            };
            if let Some(i) = next_driver {
                let d = match self.nodes[i].slot {
                    Slot::Driver(d) => d,
                    Slot::Par(_) => unreachable!("par job in driver queue"),
                };
                let f = driver_fns[d].take().expect("driver job claimed twice");
                let start = self.t0.elapsed().as_secs_f64();
                let result = catch_unwind(AssertUnwindSafe(f));
                let t = Timing { start, end: self.t0.elapsed().as_secs_f64(), worker: W };
                *self.timing[i].lock() = t;
                record_job_span(&self.nodes[i].label, "driver", self.epoch_us, t);
                if result.is_ok() {
                    if let Some(h) = self.hook {
                        h(&JobDone {
                            index: i,
                            label: &self.nodes[i].label,
                            kind: "driver",
                            seconds: (t.end - t.start).max(0.0),
                            worker: W,
                        });
                    }
                }
                self.finish(i, W, result);
                continue;
            }
            if let Some(i) = self.next_par(W) {
                self.run_par(i, W);
                continue;
            }
            let st = self.state.lock();
            if st.remaining == 0 || st.panic.is_some() {
                return;
            }
            drop(self.cv.wait_timeout(st, Duration::from_millis(2)));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex as StdMutex};

    /// Records completion order; returns (graph-builder helper, log).
    fn log() -> Arc<StdMutex<Vec<&'static str>>> {
        Arc::new(StdMutex::new(Vec::new()))
    }

    #[test]
    fn sequential_runs_in_push_order() {
        let mut g = Graph::new();
        let l = log();
        for name in ["a", "b", "c", "d"] {
            let l = l.clone();
            g.add_par(name, &[], move || l.lock().unwrap().push(name));
        }
        let report = g.run(1);
        assert_eq!(*l.lock().unwrap(), vec!["a", "b", "c", "d"]);
        assert_eq!(report.workers, 1);
        assert_eq!(report.steals, 0);
        assert_eq!(report.jobs.len(), 4);
        assert!(report.jobs.iter().all(|j| j.kind == "par"));
    }

    #[test]
    fn diamond_dependencies_are_respected() {
        for workers in [1, 2, 4] {
            let mut g = Graph::new();
            let l = log();
            let mk = |l: &Arc<StdMutex<Vec<&'static str>>>, name: &'static str| {
                let l = l.clone();
                move || l.lock().unwrap().push(name)
            };
            let a = g.add_par("a", &[], mk(&l, "a"));
            let b = g.add_par("b", &[a], mk(&l, "b"));
            let c = g.add_par("c", &[a], mk(&l, "c"));
            let _d = g.add_driver("d", &[b, c], mk(&l, "d"));
            g.run(workers);
            let order = l.lock().unwrap().clone();
            assert_eq!(order.len(), 4, "workers={workers}");
            let pos = |x| order.iter().position(|&o| o == x).unwrap();
            assert!(pos("a") < pos("b") && pos("a") < pos("c"));
            assert_eq!(pos("d"), 3);
        }
    }

    #[test]
    fn driver_jobs_run_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let seen = Arc::new(StdMutex::new(Vec::new()));
        let mut g = Graph::new();
        for _ in 0..4 {
            let seen = seen.clone();
            g.add_driver("d", &[], move || seen.lock().unwrap().push(std::thread::current().id()));
        }
        // Interleave parallel load so the driver actually waits.
        for _ in 0..8 {
            g.add_par("p", &[], || std::thread::sleep(Duration::from_millis(1)));
        }
        g.run(4);
        let seen = seen.lock().unwrap();
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|&t| t == caller));
    }

    #[test]
    fn shared_results_flow_through_slots() {
        // Providers fill OnceLock slots; consumers read them — the pattern
        // plan.rs uses for ontology/embedding/checkpoint intermediates.
        use std::sync::OnceLock;
        for workers in [1, 3] {
            let slot: Arc<OnceLock<u64>> = Arc::new(OnceLock::new());
            let sum = Arc::new(StdMutex::new(0u64));
            let mut g = Graph::new();
            let provider = {
                let slot = slot.clone();
                g.add_par("provider", &[], move || {
                    slot.set(21).unwrap();
                })
            };
            for _ in 0..6 {
                let slot = slot.clone();
                let sum = sum.clone();
                g.add_par("consumer", &[provider], move || {
                    *sum.lock().unwrap() += slot.get().copied().unwrap();
                });
            }
            g.run(workers);
            assert_eq!(*sum.lock().unwrap(), 126, "workers={workers}");
        }
    }

    #[test]
    fn panics_propagate_after_the_scope_unwinds() {
        for workers in [1, 3] {
            let mut g = Graph::new();
            g.add_par("ok", &[], || {});
            g.add_par("boom", &[], || panic!("cell failed"));
            let err = std::panic::catch_unwind(AssertUnwindSafe(|| g.run(workers)))
                .expect_err("panic should propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
            assert_eq!(msg, "cell failed", "workers={workers}");
        }
    }

    #[test]
    fn report_records_every_job_with_timing() {
        let mut g = Graph::new();
        let a = g.add_par("sleepy", &[], || std::thread::sleep(Duration::from_millis(5)));
        g.add_driver("after", &[a], || {});
        let report = g.run(2);
        assert_eq!(report.jobs.len(), 2);
        assert_eq!(report.jobs[0].label, "sleepy");
        assert_eq!(report.jobs[0].kind, "par");
        assert!(report.jobs[0].seconds >= 0.004, "{}", report.jobs[0].seconds);
        assert_eq!(report.jobs[1].kind, "driver");
        assert!(report.wall_seconds >= report.jobs[0].seconds);
    }

    #[test]
    #[should_panic(expected = "not yet pushed")]
    fn forward_dependencies_are_rejected() {
        let mut g = Graph::new();
        let a = g.add_par("a", &[], || {});
        let _ = a;
        // A JobId forged beyond the current length must be rejected.
        let bogus = JobId(5);
        g.add_par("b", &[bogus], || {});
    }

    #[test]
    fn hook_sees_every_successful_job_exactly_once() {
        for workers in [1, 3] {
            let mut g = Graph::new();
            let a = g.add_par("a", &[], || {});
            let b = g.add_par("b", &[a], || {});
            g.add_driver("c", &[b], || {});
            let seen = StdMutex::new(Vec::new());
            let hook = |d: &JobDone<'_>| {
                seen.lock().unwrap().push((d.index, d.label.to_string(), d.kind));
            };
            g.run_hooked(workers, Some(&hook));
            let mut got = seen.lock().unwrap().clone();
            got.sort();
            assert_eq!(
                got,
                vec![
                    (0, "a".to_string(), "par"),
                    (1, "b".to_string(), "par"),
                    (2, "c".to_string(), "driver"),
                ],
                "workers={workers}"
            );
        }
    }

    #[test]
    fn hook_skips_panicked_jobs() {
        let mut g = Graph::new();
        g.add_par("ok", &[], || {});
        g.add_par("boom", &[], || panic!("nope"));
        let seen = StdMutex::new(Vec::new());
        let hook = |d: &JobDone<'_>| seen.lock().unwrap().push(d.label.to_string());
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| g.run_hooked(1, Some(&hook))));
        assert_eq!(*seen.lock().unwrap(), vec!["ok".to_string()]);
    }

    #[test]
    fn par_cells_are_serial_inside_multiworker_runs() {
        let observed = Arc::new(StdMutex::new(Vec::new()));
        let mut g = Graph::new();
        for _ in 0..3 {
            let observed = observed.clone();
            g.add_par("cell", &[], move || {
                observed.lock().unwrap().push(pool::serial_mode());
            });
        }
        g.run(2);
        assert!(observed.lock().unwrap().iter().all(|&s| s), "multi-worker par cells pin serial");

        let observed = Arc::new(StdMutex::new(Vec::new()));
        let mut g = Graph::new();
        let obs = observed.clone();
        g.add_par("cell", &[], move || obs.lock().unwrap().push(pool::serial_mode()));
        g.run(1);
        assert!(!observed.lock().unwrap()[0], "sequential runs keep full nested fan-out");
    }
}
