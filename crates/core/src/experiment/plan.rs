//! The artifact cell DAG: decomposes the requested tables/figures into
//! provider jobs (ontology, datasets, corpora, embeddings, LM
//! checkpoints), warm cells keyed by `(artifact-family, paradigm, task,
//! scenario, model, adaptation)`, and one driver-side assembly job per
//! artifact, then executes the whole graph on the [`crate::sched`]
//! work-stealing scheduler.
//!
//! Warm cells populate the [`crate::lab::Shared`] memo caches (forest
//! runs, LSTM runs, scenario scores, the triple-encoding cache); the
//! assembly jobs then re-run the ordinary [`crate::experiment::run`]
//! runners, which hit those caches and emit artifacts in the *same
//! canonical order and bytes* at any worker count — every cached value is
//! a pure function of the lab seed, never of scheduling. Cells shared by
//! several artifacts (e.g. the fine-tuned-BERT series of Figures 3/A2, or
//! the Task-1 forest grid reused by Tables 3a/A7 and Figures 2/A1) are
//! deduplicated by key, so requesting `all` runs each cell exactly once.
//!
//! Anything touching the `Rc`-autograd MiniBERT/BioGPT checkpoints
//! (PubmedBERT forest cells, fine-tuning, BioGPT prompting) is pushed as
//! a driver-only job; everything else fans out to worker threads.

use super::{scenarios, supervised};
use crate::dataset::SCENARIOS;
use crate::journal;
use crate::lab::{Lab, Shared, EMBEDDING_NAMES};
use crate::report::Artifact;
use crate::sched::{Graph, JobDone, JobId, RunReport};
use crate::task::TaskKind;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::path::{Path, PathBuf};
use std::rc::Rc;
use std::sync::Mutex;

/// What a scheduled run did, for `results/run_meta.json`.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlanReport {
    /// Scheduler execution record (per-job timings, steals, wall time).
    pub scheduler: RunReport,
    /// Lab memo-cache counters (memoised scores and forest runs).
    pub cache: crate::lab::CacheStats,
    /// Triple-encoding cache: `(hits, misses)` row lookups.
    pub encoding_hits: usize,
    /// See `encoding_hits`.
    pub encoding_misses: usize,
    /// Distinct triple vectors cached across all encoders.
    pub encoding_entries: usize,
    /// Encoding-cache shard-lock acquisitions that found the lock held.
    pub encoding_contended: usize,
    /// Persistent checkpoint lookups this run, in order (empty when the
    /// lab has no store attached).
    pub checkpoints: Vec<crate::ckpt::CkptEvent>,
    /// What the run journal did (all zeros when journaling is off).
    pub journal: JournalStats,
}

/// Journal activity of one scheduled run, for `run_meta.json` and the
/// run-index manifest.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct JournalStats {
    /// Whether a journal was attached to this run.
    pub enabled: bool,
    /// Completion records appended (and fsynced) by this run.
    pub appended: u64,
    /// Jobs satisfied from the journal instead of executed (no-op cells
    /// plus artifacts replayed byte-for-byte from persisted payloads).
    pub replayed: u64,
    /// Whether this run resumed a journal with prior records.
    pub resume: bool,
    /// Damaged-suffix warnings emitted while loading the journal.
    pub warnings: u64,
}

/// Journal attachment for a scheduled run.
pub struct JournalSpec {
    /// The run directory, `results/runs/<config-digest>/`.
    pub dir: PathBuf,
    /// Injected fault, checked after each journaled completion.
    pub fault: Option<journal::FaultPlan>,
}

/// Which providers one graph instantiation actually schedules. The full
/// artifact path wants everything ([`ProviderNeed::all`]); the sweep
/// compiler unions the (much smaller) per-variant needs so a lab whose
/// variants never touch an LM never schedules its training job.
#[derive(Debug, Clone, Default)]
pub(crate) struct ProviderNeed {
    /// Embedding providers to schedule, by table name.
    pub embeds: Vec<&'static str>,
    /// Schedule the canonical 9:1 split providers?
    pub splits: bool,
    /// Schedule the WordPiece provider?
    pub wordpiece: bool,
    /// Schedule mini-BERT pretraining (implies `wordpiece`)?
    pub bert: bool,
    /// Schedule BioGPT-mini pretraining (implies `wordpiece`)?
    pub biogpt: bool,
}

impl ProviderNeed {
    /// Everything — the single-run artifact path.
    pub fn all() -> Self {
        Self {
            embeds: EMBEDDING_NAMES.to_vec(),
            splits: true,
            wordpiece: true,
            bert: true,
            biogpt: true,
        }
    }

    /// Folds another need into this one (sweep labs union their variants).
    pub fn union(&mut self, other: &ProviderNeed) {
        for e in &other.embeds {
            if !self.embeds.contains(e) {
                self.embeds.push(e);
            }
        }
        self.splits |= other.splits;
        self.wordpiece |= other.wordpiece || other.bert || other.biogpt;
        self.bert |= other.bert;
        self.biogpt |= other.biogpt;
    }
}

/// Per-job input provenance, collected while the graph is built and
/// written into each journal completion record: providers record their
/// own content-addressed checkpoint key, cells and assemblies record the
/// config digest plus each dependency's content key. `repro runs diff`
/// reads these back to say *which* inputs changed between two runs.
#[derive(Debug, Default)]
pub(crate) struct Provenance {
    /// Provider label → its own content key.
    content: HashMap<String, String>,
    /// Job label → journal input entries (`name=key`).
    inputs: HashMap<String, Vec<String>>,
}

impl Provenance {
    /// Records a provider job: its content key (falling back to the
    /// config digest for providers without one) is both its own input
    /// entry and what consumers fold into theirs.
    fn provider(&mut self, label: &str, key: Option<String>, cfg_digest: &str) {
        let key = key.unwrap_or_else(|| cfg_digest.to_string());
        self.inputs.insert(label.to_string(), vec![format!("self={key}")]);
        self.content.insert(label.to_string(), key);
    }

    /// Records a cell or assembly job: the config digest plus one entry
    /// per dependency (`dep-label=content-key`; `-` for dependencies that
    /// have no content key of their own, e.g. other cells).
    pub(crate) fn job<S: AsRef<str>>(&mut self, label: &str, cfg_digest: &str, dep_labels: &[S]) {
        let mut v = vec![format!("cfg={cfg_digest}")];
        for d in dep_labels {
            let d = d.as_ref();
            let key = self.content.get(d).map(String::as_str).unwrap_or("-");
            v.push(format!("{d}={key}"));
        }
        self.inputs.insert(label.to_string(), v);
    }

    /// The journal input entries for a label (empty when unrecorded).
    pub fn inputs_of(&self, label: &str) -> &[String] {
        self.inputs.get(label).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// Provider job ids shared by every artifact. Providers outside the
/// instantiating [`ProviderNeed`] are `None`; the accessors panic if a
/// cell asks for a provider its need never declared.
pub(crate) struct Providers {
    ontology: JobId,
    task: [JobId; 3],
    split: Option<[JobId; 3]>,
    embed: HashMap<&'static str, JobId>,
    wordpiece: Option<JobId>,
    bert: Option<JobId>,
    biogpt: Option<JobId>,
}

impl Providers {
    fn ontology(&self) -> JobId {
        self.ontology
    }

    fn task(&self, i: usize) -> JobId {
        self.task[i]
    }

    fn split(&self, i: usize) -> JobId {
        self.split.expect("split providers not planned")[i]
    }

    fn splits(&self) -> Vec<JobId> {
        self.split.expect("split providers not planned").to_vec()
    }

    fn embed(&self, name: &str) -> JobId {
        *self.embed.get(name).unwrap_or_else(|| panic!("embed provider {name} not planned"))
    }

    fn embeds(&self) -> Vec<JobId> {
        self.embed.values().copied().collect()
    }

    fn wordpiece(&self) -> JobId {
        self.wordpiece.expect("wordpiece provider not planned")
    }

    fn bert(&self) -> JobId {
        self.bert.expect("bert provider not planned")
    }

    fn biogpt(&self) -> JobId {
        self.biogpt.expect("biogpt provider not planned")
    }
}

/// Schedules the provider jobs a need declares, labelled
/// `provider:<prefix><name>`. The ontology, corpora and task datasets are
/// always present (corpora degrade to no-op jobs when nothing trains);
/// splits, embeddings and the LMs appear only when needed. The empty
/// prefix reproduces the single-run graph byte-for-byte; the sweep
/// compiler namespaces each lab's providers by a config-digest prefix so
/// journal replay keys stay stable across resumes.
pub(crate) fn providers<'a>(
    g: &mut Graph<'a>,
    lab: &'a Lab,
    prefix: &str,
    need: &ProviderNeed,
    provenance: &mut Provenance,
) -> Providers {
    let shared: &'a Shared = lab.shared();
    let cfg_digest = shared.config_digest();

    // Cache-aware DAG pruning: freshness is probed *once, at graph-build
    // time*. A provider whose checkpoint is known-fresh becomes a
    // dependency-free no-op job (kept in the graph so timelines and
    // run_meta keep their labels) that only counts the skip; the first
    // consumer decodes lazily — with the raw mmap containers that decode
    // is a borrow, and artifact subsets that never touch the provider pay
    // nothing at all. Pruning the edges (not just the job bodies) also
    // lets the corpus generators be skipped whenever every trained
    // consumer is fresh, which is every warm run — not just `--fast`.
    let wp_fresh = shared.provider_fresh("wordpiece");
    // The LM keys fold in the WordPiece vocabulary size, so probing them
    // materialises WordPiece. Only probe when that materialisation is a
    // cheap checkpoint decode — a cold run must never train WordPiece
    // serially at plan time.
    let bert_fresh = wp_fresh && lab.provider_fresh("lm-bert");
    let biogpt_fresh = wp_fresh && lab.provider_fresh("lm-biogpt");
    let embed_fresh: HashMap<&'static str, bool> = need
        .embeds
        .iter()
        .map(|&n| (n, n != "random" && shared.provider_fresh(&format!("embed-{n}"))))
        .collect();
    let any_embed_training = need.embeds.iter().any(|&n| n != "random" && !embed_fresh[n]);
    // The corpora exist only to feed trainers; when every trainer that
    // reads them is fresh (or out of scope for this need), generating
    // them eagerly is pure waste.
    let wp_training = need.wordpiece && !wp_fresh;
    let bert_training = need.bert && !bert_fresh;
    let biogpt_training = need.biogpt && !biogpt_fresh;
    let domain_needed = any_embed_training || wp_training || bert_training || biogpt_training;
    let generic_needed = any_embed_training || bert_training;

    let record = |provenance: &mut Provenance, label: &str, name: &str| {
        provenance.provider(label, shared.provider_input_key(name), &cfg_digest);
    };

    let olabel = format!("provider:{prefix}ontology");
    record(provenance, &olabel, "ontology");
    let ontology = g.add_par(olabel, &[], move || {
        shared.ontology();
    });
    let dlabel = format!("provider:{prefix}corpus-domain");
    record(provenance, &dlabel, "corpus-domain");
    let domain = if domain_needed {
        g.add_par(dlabel, &[ontology], move || {
            shared.domain_sentences();
        })
    } else {
        g.add_par(dlabel, &[], move || {
            shared.note_provider_skip();
        })
    };
    let glabel = format!("provider:{prefix}corpus-generic");
    record(provenance, &glabel, "corpus-generic");
    let generic = if generic_needed {
        g.add_par(glabel, &[], move || {
            shared.generic_sentences();
        })
    } else {
        g.add_par(glabel, &[], move || {
            shared.note_provider_skip();
        })
    };
    let task: [JobId; 3] = TaskKind::ALL.map(|t| {
        let label = format!("provider:{prefix}task{}", t.number());
        record(provenance, &label, &format!("task{}", t.number()));
        g.add_par(label, &[ontology], move || {
            shared.task(t);
        })
    });
    let split: Option<[JobId; 3]> = need.splits.then(|| {
        [0, 1, 2].map(|i| {
            let t = TaskKind::ALL[i];
            let label = format!("provider:{prefix}split{}", t.number());
            record(provenance, &label, &format!("split{}", t.number()));
            g.add_par(label, &[task[i]], move || {
                shared.split(t);
            })
        })
    });
    let mut embed = HashMap::new();
    for name in need.embeds.iter().copied() {
        let fresh = embed_fresh[name];
        let deps: &[JobId] =
            if name == "random" || fresh { &[] } else { &[domain, generic] };
        let label = format!("provider:{prefix}embed-{name}");
        record(provenance, &label, &format!("embed-{name}"));
        let id = g.add_par(label, deps, move || {
            if fresh {
                shared.note_provider_skip();
            } else {
                shared.embedding(name);
            }
        });
        embed.insert(name, id);
    }
    let wordpiece = (need.wordpiece || need.bert || need.biogpt).then(|| {
        let wp_deps: &[JobId] = if wp_fresh { &[] } else { &[domain] };
        let label = format!("provider:{prefix}wordpiece");
        record(provenance, &label, "wordpiece");
        g.add_par(label, wp_deps, move || {
            if wp_fresh {
                shared.note_provider_skip();
            } else {
                shared.wordpiece();
            }
        })
    });
    let bert = need.bert.then(|| {
        let wp = wordpiece.expect("bert implies wordpiece");
        let bert_deps: &[JobId] = if bert_fresh { &[] } else { &[wp, domain, generic] };
        let label = format!("provider:{prefix}bert");
        record(provenance, &label, "bert");
        g.add_driver(label, bert_deps, move || {
            if bert_fresh {
                lab.shared().note_provider_skip();
            } else {
                lab.bert();
            }
        })
    });
    let biogpt = need.biogpt.then(|| {
        let wp = wordpiece.expect("biogpt implies wordpiece");
        let biogpt_deps: &[JobId] = if biogpt_fresh { &[] } else { &[wp, domain] };
        let label = format!("provider:{prefix}biogpt");
        record(provenance, &label, "biogpt");
        g.add_driver(label, biogpt_deps, move || {
            if biogpt_fresh {
                lab.shared().note_provider_skip();
            } else {
                lab.biogpt();
            }
        })
    });
    Providers { ontology, task, split, embed, wordpiece, bert, biogpt }
}

/// Builds warm cells for one artifact id and returns the assembly deps.
/// Cells are deduplicated across artifacts through `keyed`.
pub(crate) struct Cells<'g, 'a> {
    pub g: &'g mut Graph<'a>,
    pub keyed: &'g mut HashMap<String, JobId>,
    pub lab: &'a Lab,
    pub shared: &'a Shared,
    pub prov: &'g Providers,
    /// Labels the run journal already recorded as completed.
    pub completed: &'g HashSet<String>,
    /// Labels satisfied from the journal this run (fills as cells are
    /// replaced by replay no-ops; the completion hook skips these).
    pub replayed: &'g mut HashSet<String>,
    /// Label namespace (empty for single runs, `<digest8>/` per sweep lab).
    pub prefix: &'g str,
    /// Input-provenance collector for journal records.
    pub provenance: &'g mut Provenance,
    /// The lab's config digest, folded into every cell's provenance.
    pub cfg_digest: &'g str,
}

impl<'a> Cells<'_, 'a> {
    fn dedup(&mut self, key: String, deps: &[JobId], f: CellClosure<'a>) -> JobId {
        if let Some(&id) = self.keyed.get(&key) {
            return id;
        }
        let label = format!("cell:{}{key}", self.prefix);
        // Journal replay: a cell that already committed in an earlier
        // (interrupted) run becomes a dependency-free no-op. Cells only
        // warm the memo caches — their values come back through the
        // derived checkpoint, and any cold miss is recomputed inline by
        // the assembly runner — so skipping them can never change bytes.
        let id = if self.completed.contains(&label) {
            self.replayed.insert(label.clone());
            match f {
                CellClosure::Par(_) => self.g.add_par(label, &[], || {}),
                CellClosure::Driver(_) => self.g.add_driver(label, &[], || {}),
            }
        } else {
            let dep_labels: Vec<String> =
                deps.iter().map(|&d| self.g.label_of(d).to_string()).collect();
            self.provenance.job(&label, self.cfg_digest, &dep_labels);
            match f {
                CellClosure::Par(f) => self.g.add_par(label, deps, f),
                CellClosure::Driver(f) => self.g.add_driver(label, deps, f),
            }
        };
        self.keyed.insert(key, id);
        id
    }

    fn forest(&mut self, task: TaskKind, model: &'static str, adapt: &'static str) -> JobId {
        let key = format!("forest|{}|{model}|{adapt}", task.number());
        if model == "pubmedbert" {
            let lab = self.lab;
            let deps = [self.prov.split(task.number() - 1), self.prov.bert()];
            self.dedup(key, &deps, CellClosure::Driver(Box::new(move || {
                lab.forest_run(task, model, adapt);
            })))
        } else {
            let shared = self.shared;
            let deps = [self.prov.split(task.number() - 1), self.prov.embed(model)];
            self.dedup(key, &deps, CellClosure::Par(Box::new(move || {
                shared.forest_run(task, model, adapt);
            })))
        }
    }

    fn lstm(&mut self, model: &'static str) -> JobId {
        let shared = self.shared;
        let deps = [self.prov.split(0), self.prov.embed(model)];
        self.dedup(format!("lstm|{model}"), &deps, CellClosure::Par(Box::new(move || {
            shared.lstm_run(model);
        })))
    }

    pub(crate) fn scenario_rf(
        &mut self,
        task: TaskKind,
        sc_index: usize,
        model: &'static str,
        adapt: &'static str,
    ) -> JobId {
        let sc = SCENARIOS[sc_index];
        let key = format!("rf|{}|{}|{}|{model}|{adapt}", task.number(), sc.split, sc.pos_ratio);
        if model == "pubmedbert" {
            let lab = self.lab;
            let deps = [self.prov.task(task.number() - 1), self.prov.bert()];
            self.dedup(key, &deps, CellClosure::Driver(Box::new(move || {
                scenarios::rf_f1_pubmedbert(lab, task, sc);
            })))
        } else {
            let shared = self.shared;
            let deps = [self.prov.task(task.number() - 1), self.prov.embed(model)];
            self.dedup(key, &deps, CellClosure::Par(Box::new(move || {
                scenarios::rf_f1_warm(shared, task, sc, model, adapt);
            })))
        }
    }

    pub(crate) fn scenario_ft(&mut self, task: TaskKind, sc_index: usize) -> JobId {
        let sc = SCENARIOS[sc_index];
        let key = format!("ft|{}|{}|{}", task.number(), sc.split, sc.pos_ratio);
        let lab = self.lab;
        let deps = [self.prov.task(task.number() - 1), self.prov.bert()];
        self.dedup(key, &deps, CellClosure::Driver(Box::new(move || {
            scenarios::ft_f1(lab, task, sc);
        })))
    }

    /// An ICL paradigm cell: scenario-independent by construction (the
    /// paper's horizontal reference line — in-context learning consumes
    /// no training data), so every scenario variant of an oracle shares
    /// one cell. Simulated oracles are pure `Send` state and fan out;
    /// BioGPT-mini needs the `!Send` checkpoint and stays on the driver.
    pub(crate) fn icl(&mut self, task: TaskKind, oracle: &'static str) -> JobId {
        let key = format!("icl|{}|{oracle}", task.number());
        if oracle == "biogpt-mini" {
            let lab = self.lab;
            let deps = [self.prov.task(task.number() - 1), self.prov.biogpt()];
            self.dedup(key, &deps, CellClosure::Driver(Box::new(move || {
                scenarios::icl_stats_biogpt(lab, task);
            })))
        } else {
            let shared = self.shared;
            let deps = [self.prov.task(task.number() - 1)];
            self.dedup(key, &deps, CellClosure::Par(Box::new(move || {
                scenarios::icl_stats_warm(shared, task, oracle);
            })))
        }
    }

    fn gpt4(&mut self, task: TaskKind) -> JobId {
        let shared = self.shared;
        let deps = [self.prov.task(task.number() - 1)];
        self.dedup(format!("gpt4|{}", task.number()), &deps, CellClosure::Par(Box::new(
            move || {
                scenarios::gpt4_f1_warm(shared, task);
            },
        )))
    }

    /// The dependency set for one artifact id: warm cells where the
    /// artifact has them, otherwise the providers its runner touches.
    fn deps_for(&mut self, id: &str) -> Vec<JobId> {
        let p_all_embeds: Vec<JobId> = self.prov.embeds();
        let supervised_models =
            || EMBEDDING_NAMES.iter().copied().chain(["pubmedbert"]).collect::<Vec<_>>();
        match id {
            "table2" | "tablea2" | "tablea3" => self.prov.splits(),
            "tablea1" => vec![self.prov.ontology()],
            // Corpus / OOV statistics touch the tokenizer and embeddings.
            "tablea4" | "tablea5" => {
                let mut d = vec![self.prov.wordpiece()];
                d.extend(p_all_embeds);
                d
            }
            "table3a" => {
                let mut d = Vec::new();
                for adapt in ["none", "naive", "task-oriented"] {
                    for model in supervised_models() {
                        if supervised::adaptations_for(model).contains(&adapt) {
                            d.push(self.forest(TaskKind::RandomNegatives, model, adapt));
                        }
                    }
                }
                d
            }
            "table3b" => {
                let mut d = Vec::new();
                for task in [TaskKind::FlippedNegatives, TaskKind::SiblingNegatives] {
                    for model in supervised_models() {
                        let adapt = if model == "pubmedbert" { "none" } else { "naive" };
                        d.push(self.forest(task, model, adapt));
                    }
                }
                d
            }
            "tablea7" => {
                let mut d = Vec::new();
                for task in [TaskKind::FlippedNegatives, TaskKind::SiblingNegatives] {
                    for adapt in ["naive", "task-oriented"] {
                        for model in supervised_models() {
                            if supervised::adaptations_for(model).contains(&adapt) {
                                d.push(self.forest(task, model, adapt));
                            }
                        }
                    }
                }
                d
            }
            "tablea6" => EMBEDDING_NAMES.iter().map(|m| self.lstm(m)).collect(),
            "fig2" => {
                let mut d = Vec::new();
                for task in TaskKind::ALL {
                    for model in EMBEDDING_NAMES {
                        d.push(self.forest(task, model, "naive"));
                    }
                }
                d
            }
            "figa1" => {
                let mut d = Vec::new();
                for model in ["random", "biowordvec", "glove-chem"] {
                    for adapt in supervised::adaptations_for(model) {
                        d.push(self.forest(TaskKind::RandomNegatives, model, adapt));
                    }
                }
                d
            }
            "fig3" | "figa2" => {
                let models: Vec<(&'static str, &'static str)> = if id == "fig3" {
                    vec![("random", "naive"), ("glove-chem", "task-oriented"), ("pubmedbert", "none")]
                } else {
                    EMBEDDING_NAMES
                        .iter()
                        .map(|&m| (m, "naive"))
                        .chain([("pubmedbert", "none")])
                        .collect()
                };
                let mut d = Vec::new();
                for task in TaskKind::ALL {
                    d.push(self.gpt4(task));
                    for s in 0..SCENARIOS.len() {
                        for &(model, adapt) in &models {
                            d.push(self.scenario_rf(task, s, model, adapt));
                        }
                        d.push(self.scenario_ft(task, s));
                    }
                }
                d
            }
            "table4" => {
                let mut d = self.prov.splits();
                d.push(self.prov.bert());
                d
            }
            "table5" => {
                let mut d = self.prov.splits();
                d.push(self.prov.biogpt());
                d
            }
            "table6" => {
                let mut d = Vec::new();
                for task in TaskKind::ALL {
                    for (model, adapt) in
                        [("glove-chem", "naive"), ("w2v-chem", "naive"), ("pubmedbert", "none")]
                    {
                        d.push(self.forest(task, model, adapt));
                    }
                }
                d.push(self.prov.bert());
                d
            }
            "summary" => {
                let mut d = vec![
                    self.forest(TaskKind::RandomNegatives, "random", "none"),
                    self.forest(TaskKind::RandomNegatives, "glove", "none"),
                    self.forest(TaskKind::RandomNegatives, "glove", "naive"),
                    self.scenario_rf(TaskKind::RandomNegatives, 0, "random", "naive"),
                    self.scenario_rf(TaskKind::RandomNegatives, 4, "random", "naive"),
                    self.scenario_rf(TaskKind::RandomNegatives, 4, "glove-chem", "naive"),
                    self.scenario_rf(TaskKind::SiblingNegatives, 4, "random", "naive"),
                    self.prov.bert(),
                    self.prov.biogpt(),
                ];
                for task in TaskKind::ALL {
                    d.push(self.forest(task, "w2v-chem", "naive"));
                }
                d
            }
            // Ablations rebuild their own corpora/forests; they only share
            // the base providers.
            id if id.starts_with("ablation-") => {
                let mut d = vec![self.prov.ontology(), self.prov.split(0)];
                d.extend(p_all_embeds);
                d
            }
            // Extensions and anything not modelled above: all providers, so the
            // runner only does its own novel work on the driver.
            _ => {
                let mut d = self.prov.splits();
                d.push(self.prov.bert());
                d.push(self.prov.biogpt());
                d
            }
        }
    }
}

enum CellClosure<'a> {
    Par(Box<dyn FnOnce() + Send + 'a>),
    Driver(Box<dyn FnOnce() + 'a>),
}

/// Runs the given artifact ids through the cell scheduler with `workers`
/// threads and returns `(artifacts in request order, run report)`.
/// Unknown ids are skipped (mirroring [`crate::experiment::run`]).
pub fn run_scheduled(
    lab: &Lab,
    ids: &[&str],
    workers: usize,
) -> (Vec<(String, Artifact)>, PlanReport) {
    run_scheduled_with(lab, ids, workers, None)
}

/// [`run_scheduled`] with an optional run journal attached: completed
/// jobs from an interrupted run are marked satisfied at graph-build time
/// (cells become no-ops, artifacts replay byte-for-byte from persisted
/// payloads), and every job this run completes is appended to the journal
/// — fsynced before the job's dependents can observe its result — so the
/// *next* interruption loses at most the job in flight.
/// Opens the run journal named by `spec` and loads its replay state:
/// `(stats, writer, replay)`. A `None` spec (journaling off) and an
/// unopenable journal file both degrade to a disabled writer. Shared by
/// the single-run path and the sweep compiler.
pub(crate) fn open_journal(
    spec: Option<&JournalSpec>,
) -> (JournalStats, Option<journal::Writer>, journal::Replay) {
    let mut jstats = JournalStats::default();
    let mut writer: Option<journal::Writer> = None;
    let mut replay = journal::Replay::default();
    if let Some(spec) = spec {
        jstats.enabled = true;
        let path = journal::journal_path(&spec.dir);
        replay = journal::load(&path);
        if let Some(w) = &replay.warning {
            eprintln!("warning: {w}");
            jstats.warnings += 1;
        }
        jstats.resume = !replay.records.is_empty();
        match journal::Writer::open(&path, replay.records.len() as u64) {
            Ok(w) => writer = Some(w),
            Err(e) => {
                eprintln!("warning: cannot open journal {} ({e}); journaling off", path.display());
                jstats.enabled = false;
            }
        }
    }
    (jstats, writer, replay)
}

pub fn run_scheduled_with(
    lab: &Lab,
    ids: &[&str],
    workers: usize,
    spec: Option<&JournalSpec>,
) -> (Vec<(String, Artifact)>, PlanReport) {
    // Replay: load whatever an earlier run journaled under this config.
    let (mut jstats, writer, replay) = open_journal(spec);
    let completed = replay.completed();

    // Digests of artifacts assembled *this* run, filled by the assembly
    // closures (driver thread) and read by the completion hook right
    // after — so the journal records each artifact's payload checksum.
    let digests: Mutex<HashMap<String, String>> = Mutex::new(HashMap::new());
    let mut replayed: HashSet<String> = HashSet::new();

    let mut g = Graph::new();
    let mut provenance = Provenance::default();
    let cfg_digest = lab.shared().config_digest();
    let prov = providers(&mut g, lab, "", &ProviderNeed::all(), &mut provenance);
    let mut keyed: HashMap<String, JobId> = HashMap::new();

    let ids: Vec<String> = ids.iter().map(|s| s.to_ascii_lowercase()).collect();
    let mut slots: Vec<Rc<RefCell<Option<Artifact>>>> = Vec::with_capacity(ids.len());
    for id in &ids {
        let label = format!("artifact:{id}");
        let slot: Rc<RefCell<Option<Artifact>>> = Rc::default();
        let out = slot.clone();

        // Journal replay: an artifact whose assembly already committed is
        // re-emitted from its persisted payload, verified against the
        // journaled digest. Verification failure (deleted / corrupted
        // payload) falls back to ordinary reassembly.
        let replayed_artifact = spec.filter(|_| completed.contains(&label)).and_then(|s| {
            replay.digest_of(&label).and_then(|want| load_artifact(&s.dir, id, want))
        });
        if let Some(a) = replayed_artifact {
            replayed.insert(label.clone());
            let mut a = Some(a);
            g.add_driver(label, &[], move || {
                *out.borrow_mut() = a.take();
            });
            slots.push(slot);
            continue;
        }

        let mut deps = {
            let mut cells = Cells {
                g: &mut g,
                keyed: &mut keyed,
                lab,
                shared: lab.shared(),
                prov: &prov,
                completed: &completed,
                replayed: &mut replayed,
                prefix: "",
                provenance: &mut provenance,
                cfg_digest: &cfg_digest,
            };
            cells.deps_for(id)
        };
        deps.sort_unstable();
        deps.dedup();
        let dep_labels: Vec<String> = deps.iter().map(|&d| g.label_of(d).to_string()).collect();
        provenance.job(&label, &cfg_digest, &dep_labels);
        let id_owned = id.clone();
        let journal_dir = spec.map(|s| s.dir.clone());
        let digests = &digests;
        g.add_driver(label.clone(), &deps, move || {
            let art = super::run(lab, &id_owned);
            if let Some(dir) = &journal_dir {
                if let Some(a) = &art {
                    match persist_artifact(dir, &id_owned, a) {
                        Ok(fnv) => {
                            digests.lock().expect("digest table").insert(label.clone(), fnv);
                        }
                        Err(e) => eprintln!("warning: artifact payload persist failed: {e}"),
                    }
                }
                // Refresh the derived checkpoint after every artifact so a
                // resumed run finds the memo caches its no-op cells warmed.
                lab.save_checkpoints();
            }
            *out.borrow_mut() = art;
        });
        slots.push(slot);
    }

    // The completion hook: journal every job executed this run (replayed
    // no-ops are already in the journal) together with its input
    // provenance, then give the injected fault a chance to kill the
    // process at this exact boundary.
    let provenance = provenance; // frozen: the hook only reads it
    let hook = |d: &JobDone<'_>| {
        if replayed.contains(d.label) {
            return;
        }
        let Some(w) = &writer else { return };
        let digest =
            digests.lock().expect("digest table").get(d.label).cloned().unwrap_or_default();
        let n = w.append(d.label, d.kind, &digest, d.seconds, d.worker, provenance.inputs_of(d.label));
        if let Some(f) = spec.and_then(|s| s.fault) {
            f.check(n);
        }
    };

    let run_span = kcb_obs::span("sched", "graph:run")
        .arg("jobs", g.len())
        .arg("workers", workers);
    let scheduler = g.run_hooked(workers, writer.is_some().then_some(&hook as _));
    run_span.end();
    jstats.appended = writer.as_ref().map(journal::Writer::appended).unwrap_or(0);
    jstats.replayed = replayed.len() as u64;

    let artifacts: Vec<(String, Artifact)> = ids
        .into_iter()
        .zip(slots)
        .filter_map(|(id, slot)| slot.borrow_mut().take().map(|a| (id, a)))
        .collect();
    let (encoding_hits, encoding_misses) = lab.encodings().hit_miss();
    let report = PlanReport {
        scheduler,
        cache: lab.cache_stats(),
        encoding_hits,
        encoding_misses,
        encoding_entries: lab.encodings().len(),
        encoding_contended: lab.encodings().contended(),
        checkpoints: lab.checkpoint_store().map(|s| s.events()).unwrap_or_default(),
        journal: jstats,
    };
    record_counters(&report);
    (artifacts, report)
}

/// Persists one assembled artifact's replay payload under the run
/// directory (tmp + rename, so a crash mid-write can never leave a
/// payload that passes the digest check) and returns its FNV-64.
pub(crate) fn persist_artifact(dir: &Path, id: &str, a: &Artifact) -> std::io::Result<String> {
    let path = journal::artifact_path(dir, id);
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)?;
    }
    let body = a.to_replay_json().render_json(None);
    let fnv = journal::fnv64_hex(body.as_bytes());
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &body)?;
    std::fs::rename(&tmp, &path)?;
    Ok(fnv)
}

/// Loads a persisted artifact payload when its bytes still match the
/// journaled digest `want`; otherwise `None` (caller reassembles).
pub(crate) fn load_artifact(dir: &Path, id: &str, want: &str) -> Option<Artifact> {
    let path = journal::artifact_path(dir, id);
    let text = std::fs::read_to_string(&path).ok()?;
    if journal::fnv64_hex(text.as_bytes()) != want {
        eprintln!(
            "warning: journal replay: {} no longer matches its journaled digest; reassembling",
            path.display()
        );
        return None;
    }
    Artifact::from_replay_json(&kcb_util::json::parse_value(&text).ok()?)
}

/// Publishes the run's cache counters to the telemetry recorder so they
/// land in the exported trace / run metadata alongside the span timeline.
pub(crate) fn record_counters(r: &PlanReport) {
    if !kcb_obs::enabled() {
        return;
    }
    for (name, v) in [
        ("encoding.hits", r.encoding_hits),
        ("encoding.misses", r.encoding_misses),
        ("encoding.entries", r.encoding_entries),
        ("encoding.contended", r.encoding_contended),
        ("memo.hits", r.cache.memo_hits),
        ("memo.misses", r.cache.memo_misses),
        ("forest_cache.hits", r.cache.forest_hits),
        ("forest_cache.misses", r.cache.forest_misses),
        ("provider.skips", r.cache.provider_skips),
    ] {
        kcb_obs::counter(name, v as u64);
    }
    if r.journal.enabled {
        kcb_obs::counter("journal.replayed", r.journal.replayed);
    }
}
