//! Data-availability scenario sweeps: Figure 3 and Figure A2 (§2.8).
//!
//! Five scenarios per task, from abundant/balanced training data to scarce
//! and heavily imbalanced; the figures plot F1 of representative models
//! from all three paradigms, with GPT-4's training-data-independent score
//! as a horizontal reference line.

use crate::dataset::{scenario_split, Scenario, SCENARIOS};
use crate::lab::{Lab, Shared, EMBEDDING_NAMES};
use crate::paradigm::icl::{build_examples, build_queries, QueryPolicy};
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant, PromptedModel};
use kcb_util::fmt::{metric, Table};
use std::sync::Arc;

// The scenario figures overlap heavily: Figure 3 and Figure A2 share their
// fine-tuned-BERT and GPT-4 series verbatim plus two forest columns, and
// within one figure the five scenarios of a task re-encode one overlapping
// triple pool. Each cell is therefore memoised in the [`Lab`] (keyed by the
// full cell identity) and every forest run encodes through the lab-wide
// [`crate::compose::EncodingCache`].

fn rf_key(task: TaskKind, sc: Scenario, model: &str, adapt: &str) -> String {
    format!("rf|{}|{}|{}|{model}|{adapt}", task.number(), sc.split, sc.pos_ratio)
}

/// One token-embedding forest cell, computable from the [`Shared`] core
/// alone — this is what the scheduler warms on worker threads.
pub(crate) fn rf_f1_warm(
    shared: &Shared,
    task: TaskKind,
    sc: Scenario,
    model: &str,
    adapt: &str,
) -> f64 {
    assert_ne!(model, "pubmedbert", "BERT cells are driver-only");
    shared.memo_score(rf_key(task, sc, model, adapt), || {
        let split = scenario_split(
            shared.task(task),
            shared.config().scenario_fraction,
            sc,
            shared.config().seed,
        );
        let enc = crate::compose::TokenAvgEncoder::new(
            shared.embedding(model),
            shared.adaptation(adapt, model),
        );
        crate::paradigm::ml::run_forest_cached(
            shared.ontology(),
            &split.train,
            &split.test,
            &enc,
            &shared.config().rf,
            Some(shared.encodings()),
        )
        .metrics
        .f1
    })
}

/// The PubmedBERT forest cell; needs the `!Send` checkpoint, so it runs
/// on the driver thread.
pub(crate) fn rf_f1_pubmedbert(lab: &Lab, task: TaskKind, sc: Scenario) -> f64 {
    lab.memo_score(rf_key(task, sc, "pubmedbert", "none"), || {
        let split =
            scenario_split(lab.task(task), lab.config().scenario_fraction, sc, lab.config().seed);
        let (bert, snapshot) = lab.bert();
        bert.restore(snapshot);
        let enc = crate::compose::BertClsEncoder::new(bert, lab.wordpiece());
        crate::paradigm::ml::run_forest_cached(
            lab.ontology(),
            &split.train,
            &split.test,
            &enc,
            &lab.config().rf,
            Some(lab.encodings()),
        )
        .metrics
        .f1
    })
}

fn rf_f1(lab: &Lab, task: TaskKind, sc: Scenario, model: &str, adapt: &str) -> f64 {
    if model == "pubmedbert" {
        rf_f1_pubmedbert(lab, task, sc)
    } else {
        rf_f1_warm(lab.shared(), task, sc, model, adapt)
    }
}

pub(crate) fn ft_f1(lab: &Lab, task: TaskKind, sc: Scenario) -> f64 {
    let key = format!("ft|{}|{}|{}", task.number(), sc.split, sc.pos_ratio);
    lab.memo_score(key, || {
        let mut split =
            scenario_split(lab.task(task), lab.config().scenario_fraction, sc, lab.config().seed);
        split.train.truncate(lab.config().ft_train_cap);
        let (bert, snapshot) = lab.bert();
        bert.restore(snapshot);
        let run = crate::paradigm::ft::run_fine_tune(
            lab.ontology(),
            &split,
            bert,
            lab.wordpiece(),
            &lab.config().ft_schedule,
        );
        bert.restore(snapshot);
        // Figures compare macro-F1-like series; positive-class F1 is what
        // the paper plots for FT (its Table 4 convention).
        run.metrics.f1
    })
}

/// GPT-4's score does not depend on the training data, so it is evaluated
/// once per task on the constant scenario test set and shared by every
/// figure that draws the reference line. Oracle simulation is pure `Send`
/// state, so this cell is scheduler-warmable.
pub(crate) fn gpt4_f1_warm(shared: &Shared, task: TaskKind) -> f64 {
    let key = format!("gpt4|{}", task.number());
    shared.memo_score(key, || {
        let split = scenario_split(
            shared.task(task),
            shared.config().scenario_fraction,
            SCENARIOS[0],
            shared.config().seed,
        );
        let n = (split.test.len() / 2).min(shared.config().icl_queries);
        let items = build_queries(
            shared.ontology(),
            &split.test,
            task,
            QueryPolicy { n_per_class: n, is_a_only: false, max_tokens: usize::MAX },
            shared.config().seed,
        );
        let builder = build_examples(shared.ontology(), &split.train, shared.config().seed);
        let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
        run_protocol(&oracle, &builder, &items, PromptVariant::Base, 2, shared.config().seed)
            .f1_mean
    })
}

fn gpt4_f1(lab: &Lab, task: TaskKind) -> f64 {
    gpt4_f1_warm(lab.shared(), task)
}

fn icl_key(task: TaskKind, oracle: &str) -> String {
    format!("icl|{}|{oracle}", task.number())
}

/// The ICL paradigm cell shared by sweep variants: `[f1_mean, f1_sd,
/// kappa]` for one (task, oracle) pair. Like the GPT-4 reference line,
/// ICL consumes no training data, so the cell is scenario-independent —
/// every scenario variant of a sweep shares it. Simulated oracles are
/// pure `Send` state, so this cell is scheduler-warmable.
pub(crate) fn icl_stats_warm(shared: &Shared, task: TaskKind, oracle: &str) -> Arc<Vec<f64>> {
    let profile = match oracle {
        "gpt-4-sim" => OracleProfile::gpt4_sim(),
        "gpt-3.5-sim" => OracleProfile::gpt35_sim(),
        "llama2-sim" => OracleProfile::llama2_sim(),
        other => panic!("unknown simulated oracle {other:?}"),
    };
    shared.memo_vec(icl_key(task, oracle), || {
        let model = LlmOracle::new(profile);
        icl_stats(shared, task, &model)
    })
}

/// The BioGPT-mini ICL cell; needs the `!Send` language-model checkpoint,
/// so it runs on the driver thread.
pub(crate) fn icl_stats_biogpt(lab: &Lab, task: TaskKind) -> Arc<Vec<f64>> {
    let model = lab.biogpt();
    lab.shared().memo_vec(icl_key(task, model.name()), || icl_stats(lab.shared(), task, model))
}

fn icl_stats(shared: &Shared, task: TaskKind, model: &dyn PromptedModel) -> Vec<f64> {
    let split = scenario_split(
        shared.task(task),
        shared.config().scenario_fraction,
        SCENARIOS[0],
        shared.config().seed,
    );
    let n = (split.test.len() / 2).min(shared.config().icl_queries);
    let items = build_queries(
        shared.ontology(),
        &split.test,
        task,
        QueryPolicy { n_per_class: n, is_a_only: false, max_tokens: usize::MAX },
        shared.config().seed,
    );
    let builder = build_examples(shared.ontology(), &split.train, shared.config().seed);
    let repeats = shared.config().icl_repeats.max(2);
    let r = run_protocol(model, &builder, &items, PromptVariant::Base, repeats, shared.config().seed);
    vec![r.f1_mean, r.f1_sd, r.kappa]
}

fn scenario_figure(lab: &Lab, id: &str, title: &str, models: &[(&str, &str)]) -> Artifact {
    let mut a = Artifact::new(id, title);
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let mut headers: Vec<String> = vec!["Scenario".to_string()];
        headers.extend(models.iter().map(|(m, ad)| {
            if *ad == "none" || *m == "pubmedbert" {
                m.to_string()
            } else {
                format!("{m} ({ad})")
            }
        }));
        headers.push("fine-tuned bert".to_string());
        headers.push("gpt-4-sim".to_string());
        let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
        let mut t = Table::new(format!("Task {} — F1 by scenario", task.number()), &header_refs)
            .numeric_after(1);

        let gpt4 = gpt4_f1(lab, task);
        for sc in SCENARIOS {
            let mut row = vec![sc.label()];
            for (model, adapt) in models {
                let f1 = rf_f1(lab, task, sc, model, adapt);
                row.push(metric(f1));
                json.push(serde_json::json!({
                    "task": task.number(), "scenario": sc.label(),
                    "split": sc.split, "pos_ratio": sc.pos_ratio,
                    "model": format!("{model}/{adapt}"), "f1": f1,
                }));
            }
            let ft = ft_f1(lab, task, sc);
            row.push(metric(ft));
            json.push(serde_json::json!({
                "task": task.number(), "scenario": sc.label(),
                "model": "fine-tuned-bert", "f1": ft,
            }));
            row.push(metric(gpt4));
            t.row(row);
        }
        json.push(serde_json::json!({
            "task": task.number(), "model": "gpt-4-sim", "f1": gpt4,
        }));
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Figure 3: representative models (random reference + the two most
/// consistent ML models) plus FT and GPT-4 lines, by scenario.
pub fn fig3(lab: &Lab) -> Artifact {
    scenario_figure(
        lab,
        "Figure 3",
        "F1 by training-data volume and imbalance — representative models from all paradigms",
        &[("random", "naive"), ("glove-chem", "task-oriented"), ("pubmedbert", "none")],
    )
}

/// Figure A2: every embedding with naive adaptation, by scenario.
pub fn fig_a2(lab: &Lab) -> Artifact {
    let models: Vec<(&str, &str)> = EMBEDDING_NAMES
        .iter()
        .map(|&m| (m, "naive"))
        .chain([("pubmedbert", "none")])
        .collect();
    scenario_figure(
        lab,
        "Figure A2",
        "F1 by training-data volume and imbalance — embeddings with naive adaptation",
        &models,
    )
}

/// A single scenario cell, exposed for integration tests and ablations.
pub fn scenario_cell(lab: &Lab, task: TaskKind, sc: Scenario, model: &str, adapt: &str) -> f64 {
    rf_f1(lab, task, sc, model, adapt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn performance_degrades_with_scarcity_and_imbalance() {
        let lab = Lab::new(LabConfig::tiny());
        // Compare the most abundant vs the most extreme scenario for the
        // random-embedding forest on task 1 (the paper's sharpest drop).
        let rich = rf_f1(&lab, TaskKind::RandomNegatives, SCENARIOS[0], "random", "naive");
        let poor = rf_f1(&lab, TaskKind::RandomNegatives, SCENARIOS[4], "random", "naive");
        assert!(
            rich > poor + 0.03,
            "rich {rich} should clearly beat poor {poor} for random embeddings"
        );
    }

    #[test]
    fn scenario_cells_are_memoised() {
        let lab = Lab::new(LabConfig::tiny());
        let a = scenario_cell(&lab, TaskKind::RandomNegatives, SCENARIOS[1], "random", "naive");
        let cached = lab.encodings().len();
        assert!(cached > 0, "forest run must populate the encoding cache");
        let b = scenario_cell(&lab, TaskKind::RandomNegatives, SCENARIOS[1], "random", "naive");
        assert_eq!(a, b);
        assert_eq!(lab.encodings().len(), cached, "memoised cell must not re-encode");
    }

    #[test]
    fn gpt4_reference_line_is_reasonable() {
        let lab = Lab::new(LabConfig::tiny());
        let f1 = gpt4_f1(&lab, TaskKind::RandomNegatives);
        assert!(f1 > 0.7 && f1 <= 1.0, "gpt4 line {f1}");
    }
}
