//! Int8 quantization calibration: the `quant_calibration.json` artifact.
//!
//! Quantization is an inference-only option on the query path; it never
//! feeds training, and the f32 artifact pipeline is untouched by it. This
//! module *proves* the parity that design relies on instead of assuming
//! it, by re-running slices of the paper's measurements with
//! int8-quantized parameters and recording the deltas against f32:
//!
//! - **embeddings** — per-table reconstruction error plus top-10
//!   cosine-neighbour overlap over the most frequent tokens (the query
//!   the int8 NN path actually serves);
//! - **table4** — mini-BERT positive-class probabilities on probe
//!   sequences with int8-dequantized weights vs the f32 checkpoint;
//! - **table5** — BioGPT-mini causal-LM losses on probe sequences (the
//!   deterministic quantity behind its verdicts) f32 vs int8, plus the
//!   fraction of probe pairs whose loss ordering survives;
//! - **fig3** — scenario forest F1 with a quantized embedding encoder vs
//!   the f32 encoder, mirroring [`super::scenarios`]' warm cell.
//!
//! Every leg carries a `pass` flag against the documented tolerances and
//! the document has a top-level conjunction; CI fails the metric-parity
//! job when it is false. Models touched here are snapshot/restored, so a
//! calibration run never perturbs later artifact assembly.

use crate::compose::{self, TokenAvgEncoder};
use crate::dataset::{scenario_split, SCENARIOS};
use crate::lab::Lab;
use crate::task::TaskKind;
use kcb_embed::{EmbeddingModel, EmbeddingTable, QuantizedEmbeddingTable};
use kcb_ml::linalg::Matrix;
use kcb_ml::quant::QuantizedMatrix;
use serde_json::{json, Value};

/// Version of the `quant_calibration.json` shape.
pub const SCHEMA_VERSION: u64 = 1;

/// Maximum tolerated absolute delta on any probed metric (probabilities,
/// losses, F1) between the f32 and int8 runs.
pub const TOL_METRIC_DELTA: f64 = 0.05;

/// Minimum tolerated mean top-10 cosine-neighbour overlap between the f32
/// and int8 nearest-neighbour rankings.
pub const TOL_TOPK_OVERLAP: f64 = 0.7;

/// Mean top-`k` neighbour overlap over the `n_tokens` most frequent
/// vocabulary tokens.
fn topk_overlap(
    table: &EmbeddingTable,
    q: &QuantizedEmbeddingTable,
    n_tokens: usize,
    k: usize,
) -> f64 {
    let n = n_tokens.min(table.vocab_size());
    if n == 0 {
        return 1.0;
    }
    let mut total = 0.0;
    for id in 0..n as u32 {
        let tok = table.vocab().token(id).to_string();
        let nf: Vec<String> = table.nearest(&tok, k).into_iter().map(|(t, _)| t).collect();
        let ni: Vec<String> = q.nearest(&tok, k).into_iter().map(|(t, _)| t).collect();
        let hits = nf.iter().filter(|t| ni.contains(t)).count();
        total += hits as f64 / nf.len().max(1) as f64;
    }
    total / n as f64
}

/// Round-trips every weight matrix through int8 (quantize then
/// dequantize) — the parameters an int8 inference engine effectively runs
/// with.
fn quantize_weights(weights: &[Matrix]) -> Vec<Matrix> {
    weights.iter().map(|m| QuantizedMatrix::quantize(m).dequantize()).collect()
}

fn max_abs_delta(a: &[f32], b: &[f32]) -> f64 {
    a.iter().zip(b).map(|(x, y)| f64::from((x - y).abs())).fold(0.0, f64::max)
}

/// Runs the full calibration against `lab` and returns the
/// `quant_calibration.json` document.
pub fn calibrate(lab: &Lab) -> Value {
    let shared = lab.shared();
    let o = shared.ontology();
    let split = shared.split(TaskKind::RandomNegatives);

    // Embedding tables: reconstruction error + neighbour overlap.
    let mut embeddings: Vec<Value> = Vec::new();
    let mut all_pass = true;
    for name in ["w2v-chem", "glove-chem"] {
        let t = match name {
            "w2v-chem" => shared.w2v_chem(),
            _ => shared.glove_chem(),
        };
        let q = QuantizedEmbeddingTable::quantize(t);
        let overlap = topk_overlap(t, &q, 20, 10);
        let pass = overlap >= TOL_TOPK_OVERLAP;
        all_pass &= pass;
        embeddings.push(json!({
            "table": name,
            "max_abs_error": q.matrix().max_abs_error(t.vectors()),
            "rmse": q.matrix().rmse(t.vectors()),
            "top10_overlap": overlap,
            "payload_bytes": q.payload_bytes(),
            "f32_bytes": t.vectors().as_slice().len() * 4,
            "pass": pass,
        }));
    }

    // Table 4 slice: BERT probabilities under int8-dequantized weights.
    let (bert, _) = lab.bert();
    let wp = shared.wordpiece();
    let probes: Vec<Vec<u32>> = split
        .test
        .iter()
        .take(16)
        .map(|e| compose::triple_token_ids(o, e.triple, wp))
        .collect();
    let probe_refs: Vec<&[u32]> = probes.iter().map(Vec::as_slice).collect();
    let bert_weights = bert.snapshot();
    let probs_f32 = bert.predict_proba_batch(&probe_refs);
    bert.restore(&quantize_weights(&bert_weights));
    let probs_int8 = bert.predict_proba_batch(&probe_refs);
    bert.restore(&bert_weights);
    let bert_delta = max_abs_delta(&probs_f32, &probs_int8);
    let bert_pass = bert_delta <= TOL_METRIC_DELTA;
    all_pass &= bert_pass;
    let table4 = json!({
        "probes": probes.len(),
        "max_prob_delta": bert_delta,
        "pass": bert_pass,
    });

    // Table 5 slice: BioGPT losses (the deterministic quantity behind its
    // sampled verdicts) and their pairwise ordering.
    let gpt = lab.biogpt().gpt_model();
    let gpt_weights = gpt.snapshot();
    let losses_f32: Vec<f32> = probe_refs.iter().map(|ids| gpt.loss(ids)).collect();
    gpt.restore(&quantize_weights(&gpt_weights));
    let losses_int8: Vec<f32> = probe_refs.iter().map(|ids| gpt.loss(ids)).collect();
    gpt.restore(&gpt_weights);
    let gpt_delta = max_abs_delta(&losses_f32, &losses_int8);
    let mut pairs = 0usize;
    let mut agree = 0usize;
    for i in 0..losses_f32.len() {
        for j in (i + 1)..losses_f32.len() {
            pairs += 1;
            if (losses_f32[i] <= losses_f32[j]) == (losses_int8[i] <= losses_int8[j]) {
                agree += 1;
            }
        }
    }
    let agreement = if pairs == 0 { 1.0 } else { agree as f64 / pairs as f64 };
    let gpt_pass = gpt_delta <= TOL_METRIC_DELTA && agreement >= TOL_TOPK_OVERLAP;
    all_pass &= gpt_pass;
    let table5 = json!({
        "probes": losses_f32.len(),
        "max_loss_delta": gpt_delta,
        "order_agreement": agreement,
        "pass": gpt_pass,
    });

    // Figure 3 slice: one scenario forest cell, f32 vs quantized encoder.
    // Both sides run uncached so neither pollutes the lab-wide encoding
    // cache with the other's rows.
    let sc = SCENARIOS[0];
    let sc_split = scenario_split(
        shared.task(TaskKind::RandomNegatives),
        shared.config().scenario_fraction,
        sc,
        shared.config().seed,
    );
    let table = shared.glove_chem();
    let adapt = shared.adaptation("naive", "glove-chem");
    let f1_of = |model: &dyn EmbeddingModel| {
        let enc = TokenAvgEncoder::new(model, adapt.clone());
        crate::paradigm::ml::run_forest(
            o,
            &sc_split.train,
            &sc_split.test,
            &enc,
            &shared.config().rf,
        )
        .metrics
        .f1
    };
    let f1_f32 = f1_of(table);
    let q_table = QuantizedEmbeddingTable::quantize(table);
    let f1_int8 = f1_of(&q_table);
    let fig3_delta = (f1_f32 - f1_int8).abs();
    let fig3_pass = fig3_delta <= TOL_METRIC_DELTA;
    all_pass &= fig3_pass;
    let fig3 = json!({
        "scenario_split": sc.split,
        "f1_f32": f1_f32,
        "f1_int8": f1_int8,
        "delta": fig3_delta,
        "pass": fig3_pass,
    });

    let tolerances = json!({
        "metric_delta": TOL_METRIC_DELTA,
        "topk_overlap": TOL_TOPK_OVERLAP,
    });
    json!({
        "schema_version": SCHEMA_VERSION,
        "tolerances": tolerances,
        "embeddings": Value::Array(embeddings),
        "table4": table4,
        "table5": table5,
        "fig3": fig3,
        "pass": all_pass,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn calibration_passes_on_the_tiny_lab_and_restores_models() {
        let lab = Lab::new(LabConfig::tiny());
        let before = lab.bert().0.predict_proba(&[2, 5, 3]);
        let doc = calibrate(&lab);
        assert_eq!(doc["schema_version"], json!(SCHEMA_VERSION));
        assert_eq!(doc["pass"], json!(true), "{doc}");
        for leg in ["table4", "table5", "fig3"] {
            assert_eq!(doc[leg]["pass"], json!(true), "{leg}: {}", doc[leg]);
        }
        assert!(doc["embeddings"][0]["top10_overlap"].as_f64().unwrap() >= TOL_TOPK_OVERLAP);
        // Calibration must leave the f32 weights exactly as it found them.
        let after = lab.bert().0.predict_proba(&[2, 5, 3]);
        assert_eq!(before.to_bits(), after.to_bits());
    }
}
