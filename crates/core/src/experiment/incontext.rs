//! In-context-learning artifacts: Table 5.

use crate::lab::Lab;
use crate::paradigm::icl::{split_prompt_setup, QueryPolicy};
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_icl::{run_protocol, IclResult, LlmOracle, OracleProfile, PromptVariant, PromptedModel};
use kcb_util::fmt::{mean_sd, metric, percent, Table};

/// Table 5: ICL effectiveness and consistency for the three models under
/// the three prompt formulations, on all tasks.
pub fn table5(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Table 5",
        "In-context learning: GPT-3.5-sim, BioGPT-mini and GPT-4-sim under three prompt variants",
    );
    let gpt35 = LlmOracle::new(OracleProfile::gpt35_sim());
    let gpt4 = LlmOracle::new(OracleProfile::gpt4_sim());
    let biogpt = lab.biogpt();
    let models: [&dyn PromptedModel; 3] = [&gpt35, biogpt, &gpt4];

    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let mut t = Table::new(
            format!(
                "Task {} — {} (relationship type: is_a)",
                task.number(),
                task.describe()
            ),
            &[
                "Model",
                "Prompt",
                "Accuracy (SD)",
                "Unclassified (%)",
                "Precision (SD)",
                "Recall (SD)",
                "F1 (SD)",
                "Kappa",
            ],
        )
        .numeric_after(2);
        let (builder, items) = split_prompt_setup(
            lab.ontology(),
            lab.split(task),
            QueryPolicy { n_per_class: lab.config().icl_queries, ..QueryPolicy::default() },
            lab.config().seed,
        );
        for model in models {
            for variant in PromptVariant::ALL {
                // Memoised through the lab (and so replayed by the derived
                // checkpoint on warm runs): the 11 numbers of a Table 5 row
                // under its (task, model, variant) identity — the strings
                // are reconstructed from that identity, exactly as
                // `run_protocol` itself sets them.
                let memo_key =
                    format!("icl5|{}|{}|{}", task.number(), model.name(), variant.label());
                let nums = lab.memo_vec(memo_key, || {
                    let r = run_protocol(
                        model,
                        &builder,
                        &items,
                        variant,
                        lab.config().icl_repeats,
                        lab.config().seed,
                    );
                    vec![
                        r.accuracy_mean,
                        r.accuracy_sd,
                        r.n_unclassified as f64,
                        r.pct_unclassified,
                        r.precision_mean,
                        r.precision_sd,
                        r.recall_mean,
                        r.recall_sd,
                        r.f1_mean,
                        r.f1_sd,
                        r.kappa,
                    ]
                });
                let r = IclResult {
                    model: model.name().to_string(),
                    variant: variant.label().to_string(),
                    task: task.number(),
                    accuracy_mean: nums[0],
                    accuracy_sd: nums[1],
                    n_unclassified: nums[2] as usize,
                    pct_unclassified: nums[3],
                    precision_mean: nums[4],
                    precision_sd: nums[5],
                    recall_mean: nums[6],
                    recall_sd: nums[7],
                    f1_mean: nums[8],
                    f1_sd: nums[9],
                    kappa: nums[10],
                };
                t.row(vec![
                    r.model.clone(),
                    r.variant.clone(),
                    mean_sd(r.accuracy_mean, r.accuracy_sd),
                    format!("{} ({})", r.n_unclassified, percent(r.pct_unclassified)),
                    mean_sd(r.precision_mean, r.precision_sd),
                    mean_sd(r.recall_mean, r.recall_sd),
                    mean_sd(r.f1_mean, r.f1_sd),
                    metric(r.kappa),
                ]);
                json.push(serde_json::to_value(&r).expect("serializable"));
            }
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn table5_reproduces_the_icl_ordering() {
        let lab = Lab::new(LabConfig::tiny());
        let a = table5(&lab);
        let rows = a.json.as_array().unwrap();
        // 3 tasks × 3 models × 3 variants.
        assert_eq!(rows.len(), 27);
        let acc = |model: &str, task: u64, variant: &str| -> f64 {
            rows.iter()
                .find(|r| r["model"] == model && r["task"] == task && r["variant"] == variant)
                .map(|r| r["accuracy_mean"].as_f64().unwrap())
                .unwrap()
        };
        for task in 1..=3u64 {
            // GPT-4-sim > GPT-3.5-sim > BioGPT-mini on every task (#1).
            assert!(
                acc("gpt-4-sim", task, "#1") > acc("gpt-3.5-sim", task, "#1"),
                "task {task}"
            );
            assert!(
                acc("gpt-3.5-sim", task, "#1") > acc("biogpt-mini", task, "#1") - 0.05,
                "task {task}: biogpt {} suspiciously strong",
                acc("biogpt-mini", task, "#1")
            );
        }
        // BioGPT behaves near chance with low kappa.
        let biogpt_kappa = rows
            .iter()
            .filter(|r| r["model"] == "biogpt-mini")
            .map(|r| r["kappa"].as_f64().unwrap())
            .fold(f64::NEG_INFINITY, f64::max);
        assert!(biogpt_kappa < 0.6, "biogpt kappa {biogpt_kappa}");
        // Variant #2 produces abstentions for the oracles.
        let idk: u64 = rows
            .iter()
            .filter(|r| r["variant"] == "#2" && r["model"] != "biogpt-mini")
            .map(|r| r["n_unclassified"].as_u64().unwrap())
            .sum();
        assert!(idk > 0);
    }
}
