//! Supervised-learning artifacts: Tables 3a/3b/A6/A7, Figure 2 and
//! Figure A1.

use crate::lab::{Lab, EMBEDDING_NAMES};
use crate::report::{prf_cells, Artifact};
use crate::task::TaskKind;
use kcb_ontology::Relation;
use kcb_util::fmt::{metric, Table};

/// The adaptation kinds each model supports (the paper computes the
/// task-oriented variant only for semantic token embeddings — "-" cells in
/// Table 3a for random and PubmedBERT).
pub(crate) fn adaptations_for(model: &str) -> &'static [&'static str] {
    match model {
        "random" => &["none", "naive"],
        "pubmedbert" => &["none"],
        _ => &["none", "naive", "task-oriented"],
    }
}

/// Table 3a: random-forest performance on Task 1 for every embedding ×
/// adaptation combination.
pub fn table3a(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Table 3a",
        "Random-forest performance on Task 1 with different adaptation methods",
    );
    let mut json = Vec::new();
    for adapt in ["none", "naive", "task-oriented"] {
        let mut t = Table::new(
            format!("Task 1 — {} adaptation", adapt),
            &["Embeddings", "Precision", "Recall", "F1-Score"],
        )
        .numeric_after(1);
        for model in EMBEDDING_NAMES.iter().copied().chain(["pubmedbert"]) {
            if !adaptations_for(model).contains(&adapt) {
                continue;
            }
            let run = lab.forest_run(TaskKind::RandomNegatives, model, adapt);
            let mut row = vec![model.to_string()];
            row.extend(prf_cells(&run.metrics));
            t.row(row);
            json.push(serde_json::json!({
                "task": 1, "model": model, "adaptation": adapt,
                "precision": run.metrics.precision,
                "recall": run.metrics.recall,
                "f1": run.metrics.f1,
            }));
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table 3b: random forest + naive adaptation on Tasks 2 and 3.
pub fn table3b(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Table 3b",
        "Random forest + naive adaptation on Tasks 2 & 3",
    );
    let mut json = Vec::new();
    for task in [TaskKind::FlippedNegatives, TaskKind::SiblingNegatives] {
        let mut t = Table::new(
            format!("Task {} — naive adaptation", task.number()),
            &["Embeddings", "Precision", "Recall", "F1-Score"],
        )
        .numeric_after(1);
        for model in EMBEDDING_NAMES.iter().copied().chain(["pubmedbert"]) {
            let adapt = if model == "pubmedbert" { "none" } else { "naive" };
            let run = lab.forest_run(task, model, adapt);
            let mut row = vec![model.to_string()];
            row.extend(prf_cells(&run.metrics));
            t.row(row);
            json.push(serde_json::json!({
                "task": task.number(), "model": model, "adaptation": adapt,
                "f1": run.metrics.f1,
            }));
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A7: Tasks 2 & 3 across naive and task-oriented adaptations.
pub fn table_a7(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Table A7",
        "Random-forest performance on Tasks 2 & 3 using different adaptation methods",
    );
    let mut json = Vec::new();
    for task in [TaskKind::FlippedNegatives, TaskKind::SiblingNegatives] {
        for adapt in ["naive", "task-oriented"] {
            let mut t = Table::new(
                format!("Task {} — {} adaptation", task.number(), adapt),
                &["Embeddings", "Precision", "Recall", "F1-Score"],
            )
            .numeric_after(1);
            for model in EMBEDDING_NAMES.iter().copied().chain(["pubmedbert"]) {
                if !adaptations_for(model).contains(&adapt) {
                    continue;
                }
                let run = lab.forest_run(task, model, adapt);
                let mut row = vec![model.to_string()];
                row.extend(prf_cells(&run.metrics));
                t.row(row);
                json.push(serde_json::json!({
                    "task": task.number(), "model": model, "adaptation": adapt,
                    "f1": run.metrics.f1,
                }));
            }
            a.push_table(t);
        }
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A6: LSTM results on Task 1 across embedding models.
pub fn table_a6(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A6", "Task 1 results of LSTM models");
    let mut t = Table::new(
        "LSTM, naive adaptation",
        &["Embeddings", "Precision", "Recall", "F1"],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for model in EMBEDDING_NAMES {
        let run = lab.lstm_run(model);
        let mut row = vec![model.to_string()];
        row.extend(prf_cells(&run.metrics));
        t.row(row);
        json.push(serde_json::json!({"model": model, "f1": run.metrics.f1}));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Figure 2: ROC-AUC per relationship type for naive-adaptation forests,
/// all three tasks.
pub fn fig2(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Figure 2",
        "ROC-AUC breakdown by relationship type (random forest, naive adaptation)",
    );
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let mut t = Table::new(
            format!("Task {} — AUC by relationship", task.number()),
            &["Relationship", "random", "glove", "w2v-chem", "glove-chem", "biowordvec", "n"],
        )
        .numeric_after(1);
        // Collect per-model AUC maps.
        let mut per_model: Vec<std::collections::HashMap<Relation, f64>> = Vec::new();
        let mut counts: std::collections::HashMap<Relation, usize> = Default::default();
        for model in EMBEDDING_NAMES {
            let run = lab.forest_run(task, model, "naive");
            let mut map = std::collections::HashMap::new();
            for (r, auc, n) in run.auc_by_relation(6) {
                map.insert(r, auc);
                counts.insert(r, n);
            }
            per_model.push(map);
        }
        for r in Relation::TASK_SET {
            if !per_model.iter().any(|m| m.contains_key(&r)) {
                continue;
            }
            let mut row = vec![r.phrase().to_string()];
            for (mi, model) in EMBEDDING_NAMES.iter().enumerate() {
                let cell = per_model[mi].get(&r).map_or("-".to_string(), |&v| metric(v));
                if let Some(&v) = per_model[mi].get(&r) {
                    json.push(serde_json::json!({
                        "task": task.number(), "model": model,
                        "relation": r.ident(), "auc": v,
                    }));
                }
                row.push(cell);
            }
            row.push(counts.get(&r).map_or(0, |&n| n).to_string());
            t.row(row);
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Figure A1: random-forest feature-importance mass per triple component,
/// across embeddings and adaptations.
pub fn fig_a1(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Figure A1",
        "Feature-importance patterns (share of importance on head / relation / tail features)",
    );
    let mut t = Table::new(
        "Task 1 forests",
        &["Embeddings", "Adaptation", "head", "relation", "tail"],
    )
    .numeric_after(2);
    let mut json = Vec::new();
    for model in ["random", "biowordvec", "glove-chem"] {
        for adapt in adaptations_for(model) {
            let run = lab.forest_run(TaskKind::RandomNegatives, model, adapt);
            let mass = run.importance_by_component();
            t.row(vec![
                model.to_string(),
                adapt.to_string(),
                metric(mass[0]),
                metric(mass[1]),
                metric(mass[2]),
            ]);
            json.push(serde_json::json!({
                "model": model, "adaptation": adapt,
                "head": mass[0], "relation": mass[1], "tail": mass[2],
            }));
        }
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    // One shared tiny lab per test binary would be nicer, but each runner
    // is exercised on its own lab to keep tests independent; tiny scale
    // keeps this cheap.

    #[test]
    fn table3a_reproduces_the_adaptation_effect() {
        let lab = Lab::new(LabConfig::tiny());
        let a = table3a(&lab);
        let rows = a.json.as_array().unwrap();
        let f1 = |model: &str, adapt: &str| -> f64 {
            rows.iter()
                .find(|r| r["model"] == model && r["adaptation"] == adapt)
                .map(|r| r["f1"].as_f64().unwrap())
                .unwrap_or(f64::NAN)
        };
        // Paper finding 1: naive adaptation helps the semantic models.
        assert!(
            f1("w2v-chem", "naive") >= f1("w2v-chem", "none") - 0.02,
            "naive should not hurt w2v-chem: {} vs {}",
            f1("w2v-chem", "naive"),
            f1("w2v-chem", "none")
        );
        // All models are far above chance on task 1.
        for r in rows {
            assert!(r["f1"].as_f64().unwrap() > 0.7, "{r}");
        }
    }

    #[test]
    fn fig_a1_importance_masses_sum_to_one() {
        let lab = Lab::new(LabConfig::tiny());
        let a = fig_a1(&lab);
        for r in a.json.as_array().unwrap() {
            let s = r["head"].as_f64().unwrap()
                + r["relation"].as_f64().unwrap()
                + r["tail"].as_f64().unwrap();
            assert!((s - 1.0).abs() < 1e-6, "{r}");
        }
    }

    #[test]
    fn fig2_has_auc_for_major_relations() {
        let lab = Lab::new(LabConfig::tiny());
        let a = fig2(&lab);
        let rows = a.json.as_array().unwrap();
        assert!(rows.iter().any(|r| r["relation"] == "is_a"));
        for r in rows {
            let auc = r["auc"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&auc));
        }
    }
}
