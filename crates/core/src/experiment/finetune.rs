//! Fine-tuning artifacts: Table 4.

use crate::dataset::Split;
use crate::lab::Lab;
use crate::paradigm::ft::run_fine_tune;
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_util::fmt::{count, metric, Table};

/// Table 4: fine-tuning datasets (8:1:1) and the fine-tuned mini-BERT's
/// test performance on each task.
pub fn table4(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Table 4",
        "Fine-tuning datasets and performances of fine-tuned PubmedBERT-mini on three tasks",
    );
    let mut t = Table::new(
        "8:1:1 stratified splits",
        &["Task", "Training", "Validation", "Test", "Accuracy", "Precision", "Recall", "F1"],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        // Memoised through the lab so the derived checkpoint replays the
        // whole row on warm runs without touching BERT: the three split
        // sizes plus the four test metrics.
        let nums = lab.memo_vec(format!("ft4|{}", task.number()), || {
            let full = Split::eight_one_one(lab.task(task), lab.config().seed);
            // Cap set sizes for tractability; ratios preserved.
            let cap = lab.config().ft_train_cap;
            let split = Split {
                train: full.train[..full.train.len().min(cap)].to_vec(),
                validation: full.validation[..full.validation.len().min(cap / 8)].to_vec(),
                test: full.test[..full.test.len().min(cap / 4)].to_vec(),
                task,
            };
            let (bert, snapshot) = lab.bert();
            bert.restore(snapshot);
            let run = run_fine_tune(
                lab.ontology(),
                &split,
                bert,
                lab.wordpiece(),
                &lab.config().ft_schedule,
            );
            bert.restore(snapshot);
            vec![
                run.sizes.0 as f64,
                run.sizes.1 as f64,
                run.sizes.2 as f64,
                run.metrics.accuracy,
                run.metrics.precision,
                run.metrics.recall,
                run.metrics.f1,
            ]
        });
        t.row(vec![
            format!("Task {}", task.number()),
            count(nums[0] as usize),
            count(nums[1] as usize),
            count(nums[2] as usize),
            metric(nums[3]),
            metric(nums[4]),
            metric(nums[5]),
            metric(nums[6]),
        ]);
        json.push(serde_json::json!({
            "task": task.number(),
            "train": nums[0] as usize,
            "validation": nums[1] as usize,
            "test": nums[2] as usize,
            "accuracy": nums[3],
            "precision": nums[4],
            "recall": nums[5],
            "f1": nums[6],
        }));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn table4_runs_all_tasks_and_restores_bert() {
        let lab = Lab::new(LabConfig::tiny());
        let before = {
            let (bert, snapshot) = lab.bert();
            bert.restore(snapshot);
            bert.predict_proba(&[2, 7, 8])
        };
        let a = table4(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 3);
        for r in rows {
            let acc = r["accuracy"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&acc));
            assert!(r["train"].as_u64().unwrap() > 0);
        }
        // Lab BERT is back at its pre-trained checkpoint afterwards.
        let (bert, _) = lab.bert();
        assert_eq!(bert.predict_proba(&[2, 7, 8]), before);
    }
}
