//! The head-to-head comparison of the three paradigms: Table 6.
//!
//! 100 previously-unseen test triples per task (50 positive, 50 negative,
//! no relationship-type constraint, §3.2), classified by GPT-4-sim, the
//! two best ML models (GloVe-Chem and W2V-Chem with naive adaptation) and
//! the PubmedBERT-mini-embedding forest.

use crate::compose::triple_vector;
use crate::lab::Lab;
use crate::paradigm::icl::{build_examples, build_queries, QueryPolicy};
use crate::report::Artifact;
use crate::task::{LabeledTriple, TaskKind};
use kcb_icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant};
use kcb_ml::metrics::BinaryMetrics;
use kcb_util::fmt::{metric, Table};
use kcb_util::Rng;

/// Table 6: head-to-head comparison of the three NLP paradigms.
pub fn table6(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table 6", "Head-to-head comparisons of three NLP paradigms");
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let split = lab.split(task);
        // 50 + 50 unconstrained test triples.
        let mut rng = Rng::seed_stream(lab.config().seed, 0x6ead + task.number() as u64);
        let mut pos: Vec<LabeledTriple> =
            split.test.iter().copied().filter(|e| e.label).collect();
        let mut neg: Vec<LabeledTriple> =
            split.test.iter().copied().filter(|e| !e.label).collect();
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let n = lab.config().icl_queries.min(pos.len()).min(neg.len());
        let mut sample: Vec<LabeledTriple> =
            pos[..n].iter().copied().chain(neg[..n].iter().copied()).collect();
        rng.shuffle(&mut sample);

        let mut t = Table::new(
            format!("Task {}", task.number()),
            &["Model", "Embeddings", "Accuracy", "Precision", "Recall", "F1 score"],
        )
        .numeric_after(2);

        // --- paradigm 1: GPT-4-sim over the same triples -----------------
        let items = build_queries(
            lab.ontology(),
            &sample,
            task,
            QueryPolicy { n_per_class: n, is_a_only: false, max_tokens: usize::MAX },
            lab.config().seed,
        );
        let builder = build_examples(lab.ontology(), &split.train, lab.config().seed);
        let oracle = LlmOracle::new(OracleProfile::gpt4_sim());
        let r = run_protocol(&oracle, &builder, &items, PromptVariant::Base, 2, lab.config().seed);
        t.row(vec![
            "GPT-4-sim".into(),
            "-".into(),
            metric(r.accuracy_mean),
            metric(r.precision_mean),
            metric(r.recall_mean),
            metric(r.f1_mean),
        ]);
        json.push(serde_json::json!({
            "task": task.number(), "model": "gpt-4-sim",
            "accuracy": r.accuracy_mean, "f1": r.f1_mean,
        }));

        // --- paradigms 2 & 3: forests over the same triples ---------------
        for (model, adapt) in
            [("glove-chem", "naive"), ("w2v-chem", "naive"), ("pubmedbert", "none")]
        {
            let run = lab.forest_run(task, model, adapt);
            // Re-evaluate the cached forest on exactly the sampled triples.
            let preds: Vec<bool> = {
                // The cached run used the same encoder family; rebuild it
                // to featurise the sample.
                if model == "pubmedbert" {
                    let (bert, snapshot) = lab.bert();
                    bert.restore(snapshot);
                    let enc = crate::compose::BertClsEncoder::new(bert, lab.wordpiece());
                    sample
                        .iter()
                        .map(|e| run.forest.predict(&triple_vector(lab.ontology(), e.triple, &enc)))
                        .collect()
                } else {
                    let enc = crate::compose::TokenAvgEncoder::new(
                        lab.embedding(model),
                        lab.adaptation(adapt, model),
                    );
                    sample
                        .iter()
                        .map(|e| run.forest.predict(&triple_vector(lab.ontology(), e.triple, &enc)))
                        .collect()
                }
            };
            let labels: Vec<bool> = sample.iter().map(|e| e.label).collect();
            // Macro-averaged for the forests vs positive-class for the ICL
            // row above — intentionally mirroring the paper's own Table 6,
            // whose RF rows show P≈R≈accuracy (macro) while its GPT-4 row
            // shows P=.975/R=.8125 (positive-class).
            let m = BinaryMetrics::from_predictions(&preds, &labels);
            t.row(vec![
                "Random forest".into(),
                model.to_string(),
                metric(m.accuracy),
                metric(m.precision),
                metric(m.recall),
                metric(m.f1),
            ]);
            json.push(serde_json::json!({
                "task": task.number(), "model": model,
                "accuracy": m.accuracy, "f1": m.f1,
            }));
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn table6_ml_beats_icl_given_abundant_training_data() {
        let lab = Lab::new(LabConfig::tiny());
        let a = table6(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 12); // 3 tasks × 4 models
        // The paper's headline ordering (ML wins by 0.11–0.17 accuracy)
        // needs abundant training data; the tiny test lab sits in the
        // low-data regime where the paper itself shows GPT-4 ahead on
        // tasks 1 and 3. Here we assert sanity plus the one ordering that
        // holds in every regime: ICL never beats ML on task 2.
        for r in rows {
            let acc = r["accuracy"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&acc), "{r}");
        }
        let acc = |task: u64, model: &str| -> f64 {
            rows.iter()
                .find(|r| r["task"] == task && r["model"] == model)
                .map(|r| r["accuracy"].as_f64().unwrap())
                .unwrap()
        };
        let best_ml_t2 =
            acc(2, "glove-chem").max(acc(2, "w2v-chem")).max(acc(2, "pubmedbert"));
        assert!(
            best_ml_t2 >= acc(2, "gpt-4-sim") - 0.05,
            "task 2: ML {best_ml_t2} must not trail ICL {}",
            acc(2, "gpt-4-sim")
        );
    }
}
