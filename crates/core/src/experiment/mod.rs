//! Experiment runners — one per paper table/figure (see DESIGN.md §3 for
//! the full index). Each runner consumes a [`crate::Lab`] and returns a
//! [`crate::report::Artifact`].

pub mod ablation;
pub mod extension;
pub mod finetune;
pub mod head_to_head;
pub mod incontext;
pub mod plan;
pub mod quant;
pub mod scenarios;
pub mod summary;
pub mod supervised;
pub mod sweep;
pub mod tables;

use crate::lab::Lab;
use crate::report::Artifact;

/// All artifact ids, in paper order.
pub const ALL_IDS: &[&str] = &[
    "table2", "table3a", "table3b", "table4", "table5", "table6", "tableA1", "tableA2", "tableA3",
    "tableA4", "tableA5", "tableA6", "tableA7", "fig2", "fig3", "figA1", "figA2",
];

/// Ablation ids (run on demand; not part of `all`).
pub const ABLATION_IDS: &[&str] =
    &["ablation-corpus", "ablation-dim", "ablation-forest", "ablation-adapt"];

/// The scorecard id (run on demand).
pub const SUMMARY_ID: &str = "summary";

/// Extension-experiment ids (beyond the paper; run on demand).
pub const EXTENSION_IDS: &[&str] = &["ext-llama2"];

/// Runs one artifact by id (case-insensitive). Returns `None` for unknown
/// ids.
pub fn run(lab: &Lab, id: &str) -> Option<Artifact> {
    let artifact = match id.to_ascii_lowercase().as_str() {
        "table2" => tables::table2(lab),
        "table3a" => supervised::table3a(lab),
        "table3b" => supervised::table3b(lab),
        "table4" => finetune::table4(lab),
        "table5" => incontext::table5(lab),
        "table6" => head_to_head::table6(lab),
        "tablea1" => tables::table_a1(lab),
        "tablea2" => tables::table_a2(lab),
        "tablea3" => tables::table_a3(lab),
        "tablea4" => tables::table_a4(lab),
        "tablea5" => tables::table_a5(lab),
        "tablea6" => supervised::table_a6(lab),
        "tablea7" => supervised::table_a7(lab),
        "fig2" => supervised::fig2(lab),
        "fig3" => scenarios::fig3(lab),
        "figa1" => supervised::fig_a1(lab),
        "figa2" => scenarios::fig_a2(lab),
        "ablation-corpus" => ablation::ablation_corpus(lab),
        "ablation-dim" => ablation::ablation_dim(lab),
        "ablation-forest" => ablation::ablation_forest(lab),
        "ablation-adapt" => ablation::ablation_adaptation(lab),
        "summary" => summary::summary(lab),
        "ext-llama2" => extension::ext_llama2(lab),
        _ => return None,
    };
    Some(artifact)
}

/// One-line description of an artifact id (case-insensitive), for
/// `repro --list`. Returns `None` for unknown ids — the same id space as
/// [`run`].
pub fn describe(id: &str) -> Option<&'static str> {
    Some(match id.to_ascii_lowercase().as_str() {
        "table2" => "statistics of the generated datasets for the three curation tasks",
        "table3a" => "supervised F1 on Task 1 across embeddings and vocabulary adaptations",
        "table3b" => "supervised F1 on Tasks 2 and 3 (flipped / sibling negatives)",
        "table4" => "fine-tuned mini-BERT F1 on all three tasks",
        "table5" => "in-context learning with the BioGPT-mini oracle",
        "table6" => "head-to-head comparisons of the three NLP paradigms",
        "tablea1" => "included ChEBI sub-ontologies",
        "tablea2" => "included ChEBI relationship types",
        "tablea3" => "numbers of triples per relationship type",
        "tablea4" => "embedding model size and out-of-vocabulary statistics",
        "tablea5" => "most frequent tokens in head and tail entities",
        "tablea6" => "Task 1 results of the LSTM models",
        "tablea7" => "vocabulary-adaptation ablation on Tasks 2 and 3",
        "fig2" => "supervised F1 per relationship type across embeddings",
        "fig3" => "data-scarcity scenario sweeps: supervised vs fine-tuning vs ICL",
        "figa1" => "feature-importance mass by component on Task 1",
        "figa2" => "scenario sweeps for every embedding model",
        "ablation-corpus" => "ablation: domain vs generic pre-training corpus",
        "ablation-dim" => "ablation: embedding dimensionality",
        "ablation-forest" => "ablation: random-forest capacity",
        "ablation-adapt" => "ablation: vocabulary-adaptation strategies",
        "summary" => "machine-checked scorecard of the paper's key findings",
        "ext-llama2" => "extension: the paper's future-work open-weight oracle",
        _ => return None,
    })
}
