//! The reproduction scorecard: programmatically re-checks the paper's key
//! qualitative findings at the current scale and prints PASS/FAIL per
//! finding (`repro summary`). This is the machine-checkable core of
//! EXPERIMENTS.md.

use crate::dataset::{scenario_split, SCENARIOS};
use crate::lab::Lab;
use crate::paradigm::icl::{split_prompt_setup, QueryPolicy};
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_icl::{run_protocol, IclResult, LlmOracle, OracleProfile, PromptVariant};
use kcb_util::fmt::Table;

struct Finding {
    name: &'static str,
    detail: String,
    pass: bool,
}

fn icl(lab: &Lab, model: &LlmOracle, task: TaskKind, variant: PromptVariant) -> IclResult {
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(task),
        QueryPolicy { n_per_class: lab.config().icl_queries, ..QueryPolicy::default() },
        lab.config().seed,
    );
    run_protocol(model, &builder, &items, variant, lab.config().icl_repeats, lab.config().seed)
}

/// Builds the scorecard artifact.
pub fn summary(lab: &Lab) -> Artifact {
    let mut findings: Vec<Finding> = Vec::new();

    // --- F1 per task for the ML paradigm (w2v-chem + naive) -------------
    let ml_f1: Vec<f64> = TaskKind::ALL
        .iter()
        .map(|&t| lab.forest_run(t, "w2v-chem", "naive").metrics.f1)
        .collect();
    findings.push(Finding {
        name: "ML task ordering: task 2 easiest, task 3 hardest",
        detail: format!("F1 = {:.3} / {:.3} / {:.3}", ml_f1[0], ml_f1[1], ml_f1[2]),
        pass: ml_f1[1] > ml_f1[2] && ml_f1[0] > ml_f1[2],
    });

    // --- Random embeddings as strong baseline -----------------------------
    let rand_f1 = lab.forest_run(TaskKind::RandomNegatives, "random", "none").metrics.f1;
    findings.push(Finding {
        name: "Random embeddings are a strong task-1 baseline",
        detail: format!("F1 = {rand_f1:.3} (paper .956)"),
        pass: rand_f1 > 0.85,
    });

    // --- Adaptation helps the generic semantic model -----------------------
    let glove_none = lab.forest_run(TaskKind::RandomNegatives, "glove", "none").metrics.f1;
    let glove_naive = lab.forest_run(TaskKind::RandomNegatives, "glove", "naive").metrics.f1;
    findings.push(Finding {
        name: "Naive adaptation lifts generic GloVe",
        detail: format!("F1 {glove_none:.3} -> {glove_naive:.3} (paper .908 -> .954)"),
        pass: glove_naive >= glove_none,
    });

    // --- ICL ordering ---------------------------------------------------------
    let gpt4 = LlmOracle::new(OracleProfile::gpt4_sim());
    let gpt35 = LlmOracle::new(OracleProfile::gpt35_sim());
    let r4 = icl(lab, &gpt4, TaskKind::RandomNegatives, PromptVariant::Base);
    let r35 = icl(lab, &gpt35, TaskKind::RandomNegatives, PromptVariant::Base);
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(TaskKind::RandomNegatives),
        QueryPolicy { n_per_class: lab.config().icl_queries, ..QueryPolicy::default() },
        lab.config().seed,
    );
    let rb = run_protocol(
        lab.biogpt(),
        &builder,
        &items,
        PromptVariant::Base,
        lab.config().icl_repeats,
        lab.config().seed,
    );
    findings.push(Finding {
        name: "ICL ordering: GPT-4 > GPT-3.5 > BioGPT, BioGPT inconsistent",
        detail: format!(
            "acc {:.3} > {:.3} > {:.3}; BioGPT kappa {:.2}",
            r4.accuracy_mean, r35.accuracy_mean, rb.accuracy_mean, rb.kappa
        ),
        pass: r4.accuracy_mean > r35.accuracy_mean
            && r35.accuracy_mean > rb.accuracy_mean
            && rb.kappa < 0.3,
    });

    // --- IDK variant trade-off ---------------------------------------------------
    let r4_idk = icl(lab, &gpt4, TaskKind::RandomNegatives, PromptVariant::AllowIdk);
    findings.push(Finding {
        name: "Variant #2 trades accuracy for abstention",
        detail: format!(
            "acc {:.3} -> {:.3}, unclassified 0 -> {}",
            r4.accuracy_mean, r4_idk.accuracy_mean, r4_idk.n_unclassified
        ),
        pass: r4_idk.n_unclassified > 0 && r4_idk.accuracy_mean <= r4.accuracy_mean + 1e-9,
    });

    // --- Task 2: ICL never competitive -----------------------------------------
    let ml_t2 = ml_f1[1];
    let r4_t2 = icl(lab, &gpt4, TaskKind::FlippedNegatives, PromptVariant::Base);
    findings.push(Finding {
        name: "Task 2: supervised ML beats GPT-4 decisively",
        detail: format!("ML F1 {ml_t2:.3} vs GPT-4 F1 {:.3}", r4_t2.f1_mean),
        pass: ml_t2 > r4_t2.f1_mean + 0.05,
    });

    // --- Scarcity collapse of the random baseline -------------------------------
    let rich = crate::experiment::scenarios::scenario_cell(
        lab,
        TaskKind::RandomNegatives,
        SCENARIOS[0],
        "random",
        "naive",
    );
    let poor = crate::experiment::scenarios::scenario_cell(
        lab,
        TaskKind::RandomNegatives,
        SCENARIOS[4],
        "random",
        "naive",
    );
    let poor_domain = crate::experiment::scenarios::scenario_cell(
        lab,
        TaskKind::RandomNegatives,
        SCENARIOS[4],
        "glove-chem",
        "naive",
    );
    findings.push(Finding {
        name: "Random embeddings collapse fastest under scarcity",
        detail: format!(
            "random {rich:.3} -> {poor:.3}; domain model holds {poor_domain:.3} in scenario 5"
        ),
        pass: rich - poor > 0.1 && poor_domain > poor,
    });

    // --- FT degradation under extreme scarcity (task 3) ---------------------------
    let mut split = scenario_split(
        lab.task(TaskKind::SiblingNegatives),
        lab.config().scenario_fraction,
        SCENARIOS[4],
        lab.config().seed,
    );
    split.train.truncate(lab.config().ft_train_cap);
    let (bert, snapshot) = lab.bert();
    bert.restore(snapshot);
    let ft = crate::paradigm::ft::run_fine_tune(
        lab.ontology(),
        &split,
        bert,
        lab.wordpiece(),
        &lab.config().ft_schedule,
    );
    bert.restore(snapshot);
    let ml_t3_poor = crate::experiment::scenarios::scenario_cell(
        lab,
        TaskKind::SiblingNegatives,
        SCENARIOS[4],
        "random",
        "naive",
    );
    findings.push(Finding {
        name: "FT collapses below random-embedding ML in task 3's worst scenario",
        detail: format!("FT F1 {:.3} vs random-embedding ML {:.3}", ft.metrics.f1, ml_t3_poor),
        pass: ft.metrics.f1 <= ml_t3_poor + 0.02,
    });

    // --- Render ----------------------------------------------------------------------
    let mut a = Artifact::new(
        "Summary",
        "Reproduction scorecard: the paper's key findings re-checked at this scale",
    );
    let mut t = Table::new("Findings", &["Finding", "Measured", "Verdict"]);
    let mut json = Vec::new();
    for f in &findings {
        t.row(vec![
            f.name.to_string(),
            f.detail.clone(),
            if f.pass { "PASS".into() } else { "FAIL".into() },
        ]);
        json.push(serde_json::json!({
            "finding": f.name, "detail": f.detail, "pass": f.pass,
        }));
    }
    let n_pass = findings.iter().filter(|f| f.pass).count();
    t.row(vec![
        "TOTAL".into(),
        format!("{n_pass}/{} findings reproduced", findings.len()),
        if n_pass == findings.len() { "PASS".into() } else { "PARTIAL".into() },
    ]);
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn scorecard_mostly_passes_at_tiny_scale() {
        let lab = Lab::new(LabConfig::tiny());
        let a = summary(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 8);
        let passes = rows.iter().filter(|r| r["pass"] == true).count();
        assert!(
            passes >= 6,
            "expected ≥6/8 findings to reproduce even at tiny scale, got {passes}: {}",
            a.render()
        );
    }
}
