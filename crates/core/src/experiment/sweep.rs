//! The sweep compiler: lowers a declarative variant grid (seed × scale ×
//! scenario × paradigm × oracle) through the [`super::plan`] cell
//! decomposition into **one** structure-shared DAG, so a K-variant sweep
//! costs far less than K single runs.
//!
//! Sharing falls out of content addressing: variants with the same
//! `(seed, scale)` share a [`Lab`] (providers are scheduled once per lab,
//! gated to the union of what its variants actually need), and within a
//! lab, cells are deduplicated by the same memo keys the single-run path
//! uses — the PR 5 checkpoint keys normalise thread count, so equal keys
//! mean identical bytes and a variant's artifact is byte-identical to a
//! single-variant sweep of the same config. Scenario-independent cells
//! (the paper draws ICL as a horizontal reference line because in-context
//! learning consumes no training data) are shared by *every* scenario
//! variant of an oracle.
//!
//! On top of the per-variant tables the sweep emits the paper's
//! seed-repeat statistics: Fleiss-κ agreement across seeds and Welch
//! t-tests between paradigms within one (scale, scenario) — plus
//! ChemTEB-style efficiency accounting (shared vs unique jobs, exclusive
//! vs amortized seconds per variant).

use super::plan::{self, Cells, JournalSpec, PlanReport, Provenance, ProviderNeed, Providers};
use super::{scenarios, supervised};
use crate::dataset::SCENARIOS;
use crate::journal;
use crate::lab::{CacheStats, Lab, LabConfig, EMBEDDING_NAMES};
use crate::report::Artifact;
use crate::sched::{Graph, JobDone, JobId};
use crate::task::TaskKind;
use kcb_ml::kappa::{fleiss_kappa, ratings_from_answers};
use kcb_ml::stats::welch_t_test;
use kcb_util::fmt::metric;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// The three NLP paradigms of the paper's central comparison.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Paradigm {
    /// Random-forest over (adapted) embeddings — §2.5.
    Supervised,
    /// Fine-tuned mini-BERT — §2.6.
    FineTune,
    /// In-context learning against an oracle — §2.4.
    Icl,
}

impl Paradigm {
    /// All paradigms, in paper order.
    pub const ALL: [Paradigm; 3] = [Paradigm::Supervised, Paradigm::FineTune, Paradigm::Icl];

    /// Short code used in variant ids.
    pub fn code(self) -> &'static str {
        match self {
            Paradigm::Supervised => "sup",
            Paradigm::FineTune => "ft",
            Paradigm::Icl => "icl",
        }
    }

    /// Human-facing label used in analysis tables.
    pub fn label(self) -> &'static str {
        match self {
            Paradigm::Supervised => "supervised",
            Paradigm::FineTune => "fine-tuning",
            Paradigm::Icl => "icl",
        }
    }

    fn parse(s: &str) -> Result<Paradigm, String> {
        Ok(match s {
            "sup" | "supervised" => Paradigm::Supervised,
            "ft" | "finetune" | "fine-tuning" => Paradigm::FineTune,
            "icl" => Paradigm::Icl,
            other => return Err(format!("unknown paradigm '{other}' (supervised|ft|icl)")),
        })
    }
}

fn parse_oracle(s: &str) -> Result<&'static str, String> {
    Ok(match s {
        "gpt4" | "gpt-4" | "gpt-4-sim" => "gpt-4-sim",
        "gpt35" | "gpt-3.5" | "gpt-3.5-sim" => "gpt-3.5-sim",
        "llama2" | "llama2-sim" => "llama2-sim",
        "biogpt" | "biogpt-mini" => "biogpt-mini",
        other => return Err(format!("unknown oracle '{other}' (gpt4|gpt35|llama2|biogpt)")),
    })
}

fn parse_model(s: &str) -> Result<&'static str, String> {
    if s == "pubmedbert" {
        return Ok("pubmedbert");
    }
    EMBEDDING_NAMES
        .iter()
        .find(|&&m| m == s)
        .copied()
        .ok_or_else(|| format!("unknown model '{s}' (see repro --list models: embeddings or pubmedbert)"))
}

/// A declarative variant grid: `repro sweep --grid
/// "seeds=7,8;scenarios=0,2;paradigms=supervised,icl"`. Empty `seeds` /
/// `scales` inherit the base config at expansion time.
#[derive(Debug, Clone, PartialEq)]
pub struct GridSpec {
    /// Master seeds (empty = the base config's seed).
    pub seeds: Vec<u64>,
    /// Ontology scales (empty = the base config's scale).
    pub scales: Vec<f64>,
    /// Scenario indices into [`SCENARIOS`].
    pub scenarios: Vec<usize>,
    /// Paradigms to cross with the scenarios.
    pub paradigms: Vec<Paradigm>,
    /// Oracles for ICL variants (ignored unless `paradigms` contains ICL).
    pub oracles: Vec<&'static str>,
    /// Embedding model (or `pubmedbert`) for supervised variants.
    pub model: &'static str,
    /// Vocabulary adaptation for supervised variants.
    pub adapt: &'static str,
}

impl Default for GridSpec {
    fn default() -> Self {
        Self {
            seeds: Vec::new(),
            scales: Vec::new(),
            scenarios: vec![0],
            paradigms: Paradigm::ALL.to_vec(),
            oracles: vec!["gpt-4-sim"],
            model: "glove-chem",
            adapt: "task-oriented",
        }
    }
}

impl GridSpec {
    /// Parses a `key=v1,v2;key=...` grid spec. Keys: `seeds`, `scales`,
    /// `scenarios`, `paradigms`, `oracles`, `model`, `adapt` (singular
    /// forms accepted). Every value is validated here so a bad grid fails
    /// before any work starts.
    pub fn parse(s: &str) -> Result<GridSpec, String> {
        let mut g = GridSpec::default();
        let mut adapt_set = false;
        for part in s.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (key, vals) =
                part.split_once('=').ok_or_else(|| format!("grid term '{part}' is not key=value"))?;
            let vals: Vec<&str> = vals.split(',').map(str::trim).filter(|v| !v.is_empty()).collect();
            if vals.is_empty() {
                return Err(format!("grid key '{key}' has no values"));
            }
            match key.trim() {
                "seed" | "seeds" => {
                    g.seeds = vals
                        .iter()
                        .map(|v| v.parse().map_err(|_| format!("bad seed {v}")))
                        .collect::<Result<_, _>>()?;
                }
                "scale" | "scales" => {
                    g.scales = vals
                        .iter()
                        .map(|v| {
                            let s: f64 = v.parse().map_err(|_| format!("bad scale {v}"))?;
                            // Mirrors the CLI's `--scale` range.
                            if !(s > 0.0 && s <= 4.0) {
                                return Err(format!("scale must be in (0, 4], got {v}"));
                            }
                            Ok(s)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "scenario" | "scenarios" => {
                    g.scenarios = vals
                        .iter()
                        .map(|v| {
                            let i: usize = v.parse().map_err(|_| format!("bad scenario {v}"))?;
                            if i >= SCENARIOS.len() {
                                return Err(format!(
                                    "scenario {i} out of range (0..{})",
                                    SCENARIOS.len() - 1
                                ));
                            }
                            Ok(i)
                        })
                        .collect::<Result<_, _>>()?;
                }
                "paradigm" | "paradigms" => {
                    if vals == ["all"] {
                        g.paradigms = Paradigm::ALL.to_vec();
                    } else {
                        g.paradigms =
                            vals.iter().map(|v| Paradigm::parse(v)).collect::<Result<_, _>>()?;
                    }
                }
                "oracle" | "oracles" => {
                    g.oracles = vals.iter().map(|v| parse_oracle(v)).collect::<Result<_, _>>()?;
                }
                "model" => g.model = parse_model(vals[0])?,
                "adapt" => {
                    g.adapt = match vals[0] {
                        "none" => "none",
                        "naive" => "naive",
                        "task-oriented" => "task-oriented",
                        other => return Err(format!("unknown adapt '{other}'")),
                    };
                    adapt_set = true;
                }
                other => return Err(format!("unknown grid key '{other}'")),
            }
        }
        // The paper computes task-oriented adaptation only for semantic
        // token embeddings; default the others to their natural setting.
        if !adapt_set {
            g.adapt = match g.model {
                "pubmedbert" => "none",
                "random" => "naive",
                _ => "task-oriented",
            };
        }
        if !supervised::adaptations_for(g.model).contains(&g.adapt) {
            return Err(format!("model {} does not support adapt {}", g.model, g.adapt));
        }
        let mut seen = HashSet::new();
        if !g.seeds.iter().all(|s| seen.insert(*s)) {
            return Err("duplicate seeds in grid".to_string());
        }
        Ok(g)
    }

    /// The normalised spec string (round-trips through [`GridSpec::parse`]).
    pub fn render(&self) -> String {
        let join =
            |v: Vec<String>| v.join(",");
        let mut parts = Vec::new();
        if !self.seeds.is_empty() {
            parts.push(format!("seeds={}", join(self.seeds.iter().map(|s| s.to_string()).collect())));
        }
        if !self.scales.is_empty() {
            parts.push(format!("scales={}", join(self.scales.iter().map(|s| s.to_string()).collect())));
        }
        parts.push(format!(
            "scenarios={}",
            join(self.scenarios.iter().map(|s| s.to_string()).collect())
        ));
        parts.push(format!(
            "paradigms={}",
            join(self.paradigms.iter().map(|p| p.code().to_string()).collect())
        ));
        if self.paradigms.contains(&Paradigm::Icl) {
            parts.push(format!(
                "oracles={}",
                join(self.oracles.iter().map(|o| o.to_string()).collect())
            ));
        }
        parts.push(format!("model={}", self.model));
        parts.push(format!("adapt={}", self.adapt));
        parts.join(";")
    }

    /// Expands the grid into concrete variants, in deterministic
    /// seed-major order.
    pub fn expand(&self, base: &LabConfig) -> Vec<Variant> {
        let seeds: Vec<u64> = if self.seeds.is_empty() { vec![base.seed] } else { self.seeds.clone() };
        let scales: Vec<f64> =
            if self.scales.is_empty() { vec![base.scale] } else { self.scales.clone() };
        let mut out = Vec::new();
        for &seed in &seeds {
            for &scale in &scales {
                for &scenario in &self.scenarios {
                    for &paradigm in &self.paradigms {
                        if paradigm == Paradigm::Icl {
                            for &oracle in &self.oracles {
                                out.push(Variant {
                                    seed,
                                    scale,
                                    scenario,
                                    paradigm,
                                    oracle: Some(oracle),
                                    model: self.model,
                                    adapt: self.adapt,
                                });
                            }
                        } else {
                            out.push(Variant {
                                seed,
                                scale,
                                scenario,
                                paradigm,
                                oracle: None,
                                model: self.model,
                                adapt: self.adapt,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

/// One concrete grid point.
#[derive(Debug, Clone, PartialEq)]
pub struct Variant {
    /// Master seed ([`LabConfig::reseed`]).
    pub seed: u64,
    /// Ontology scale.
    pub scale: f64,
    /// Scenario index into [`SCENARIOS`].
    pub scenario: usize,
    /// Which paradigm this variant evaluates.
    pub paradigm: Paradigm,
    /// The oracle, for ICL variants.
    pub oracle: Option<&'static str>,
    /// Embedding model (supervised variants).
    pub model: &'static str,
    /// Vocabulary adaptation (supervised variants).
    pub adapt: &'static str,
}

impl Variant {
    /// Stable human-readable id, e.g. `s7-x0.006-sc0-icl-gpt-4-sim`.
    pub fn id(&self) -> String {
        let mut id = format!("s{}-x{}-sc{}-{}", self.seed, self.scale, self.scenario, self.paradigm.code());
        if let Some(o) = self.oracle {
            id.push('-');
            id.push_str(&o.replace('.', ""));
        }
        id
    }

    /// The full lab config for this variant.
    pub fn config(&self, base: &LabConfig) -> LabConfig {
        let mut cfg = base.clone();
        cfg.scale = self.scale;
        cfg.reseed(self.seed);
        cfg
    }

    /// The series label used in aggregate / significance tables.
    pub fn series(&self) -> String {
        match self.paradigm {
            Paradigm::Supervised => format!("supervised({}/{})", self.model, self.adapt),
            Paradigm::FineTune => "fine-tuning".to_string(),
            Paradigm::Icl => format!("icl({})", self.oracle.unwrap_or("gpt-4-sim")),
        }
    }

    /// Which providers this variant's cells reach (the per-lab union of
    /// these gates provider scheduling).
    fn need(&self) -> ProviderNeed {
        let mut n = ProviderNeed::default();
        match self.paradigm {
            Paradigm::Supervised => {
                if self.model == "pubmedbert" {
                    n.bert = true;
                    n.wordpiece = true;
                } else {
                    n.embeds = vec![self.model];
                }
            }
            Paradigm::FineTune => {
                n.bert = true;
                n.wordpiece = true;
            }
            Paradigm::Icl => {
                if self.oracle == Some("biogpt-mini") {
                    n.biogpt = true;
                    n.wordpiece = true;
                }
            }
        }
        n
    }

    /// The memo keys of this variant's cells (exactly what
    /// [`variant_cells`] schedules, without scheduling anything).
    fn cell_keys(&self) -> Vec<String> {
        let sc = SCENARIOS[self.scenario];
        TaskKind::ALL
            .iter()
            .map(|t| match self.paradigm {
                Paradigm::Supervised => format!(
                    "rf|{}|{}|{}|{}|{}",
                    t.number(),
                    sc.split,
                    sc.pos_ratio,
                    self.model,
                    self.adapt
                ),
                Paradigm::FineTune => format!("ft|{}|{}|{}", t.number(), sc.split, sc.pos_ratio),
                Paradigm::Icl => {
                    format!("icl|{}|{}", t.number(), self.oracle.unwrap_or("gpt-4-sim"))
                }
            })
            .collect()
    }

    /// Provider labels this variant's closure reaches under `prefix`
    /// (must mirror [`plan::providers`] label generation).
    fn provider_labels(&self, prefix: &str) -> Vec<String> {
        let need = self.need();
        let mut labels = vec![
            format!("provider:{prefix}ontology"),
            format!("provider:{prefix}corpus-domain"),
            format!("provider:{prefix}corpus-generic"),
        ];
        for t in TaskKind::ALL {
            labels.push(format!("provider:{prefix}task{}", t.number()));
        }
        for m in &need.embeds {
            labels.push(format!("provider:{prefix}embed-{m}"));
        }
        if need.wordpiece || need.bert || need.biogpt {
            labels.push(format!("provider:{prefix}wordpiece"));
        }
        if need.bert {
            labels.push(format!("provider:{prefix}bert"));
        }
        if need.biogpt {
            labels.push(format!("provider:{prefix}biogpt"));
        }
        labels
    }
}

/// One planned job with its cross-variant reference count.
#[derive(Debug, Clone, serde::Serialize)]
pub struct PlannedJob {
    /// Graph label (`provider:…`, `cell:…`, `artifact:…`).
    pub label: String,
    /// Job family: `provider` / `cell` / `artifact`.
    pub kind: &'static str,
    /// How many variants reference this job.
    pub refs: usize,
}

/// The dedup plan: every job the unified graph will contain, with
/// reference counts — computed without building labs' data or running
/// anything, so the `--plan` dry-run and the Criterion plan bench are
/// cheap.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// Variant ids, in grid order.
    pub variant_ids: Vec<String>,
    /// Distinct labs ((seed, scale) groups).
    pub labs: usize,
    /// All jobs, in first-reference order.
    pub jobs: Vec<PlannedJob>,
    /// `jobs.len()`.
    pub total_jobs: usize,
    /// Jobs referenced by ≥ 2 variants.
    pub shared_jobs: usize,
    /// Jobs referenced by exactly 1 variant.
    pub unique_jobs: usize,
    /// Variant id → the labels it references (providers + cells + its
    /// artifact), for per-variant cost attribution.
    pub variant_jobs: HashMap<String, Vec<String>>,
}

/// Groups variants into labs by `(seed, scale)`, preserving first-seen
/// order: `(lab key, config, variant indices)`.
fn lab_groups(base: &LabConfig, variants: &[Variant]) -> Vec<(String, LabConfig, Vec<usize>)> {
    let mut groups: Vec<(String, LabConfig, Vec<usize>)> = Vec::new();
    for (i, v) in variants.iter().enumerate() {
        let key = format!("s{}-x{}", v.seed, v.scale);
        match groups.iter_mut().find(|(k, _, _)| *k == key) {
            Some((_, _, idxs)) => idxs.push(i),
            None => groups.push((key, v.config(base), vec![i])),
        }
    }
    groups
}

/// The label namespace for one sweep lab: the first 8 hex digits of its
/// config digest plus `/`. Content-derived, so it is stable across
/// resumes (journal replay matches) and across sweeps containing the same
/// config.
fn lab_prefix(cfg: &LabConfig) -> String {
    let mut digest = Lab::new(cfg.clone()).shared().config_digest();
    digest.truncate(8);
    digest.push('/');
    digest
}

/// Compiles the dedup plan for a grid. Pure: no training, no I/O.
pub fn plan(base: &LabConfig, grid: &GridSpec) -> SweepPlan {
    let variants = grid.expand(base);
    let groups = lab_groups(base, &variants);
    let mut jobs: Vec<PlannedJob> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let mut variant_jobs: HashMap<String, Vec<String>> = HashMap::new();
    let mut reference = |jobs: &mut Vec<PlannedJob>, label: String, kind: &'static str| {
        match index.get(&label) {
            Some(&i) => jobs[i].refs += 1,
            None => {
                index.insert(label.clone(), jobs.len());
                jobs.push(PlannedJob { label, kind, refs: 1 });
            }
        }
    };
    for (_, cfg, idxs) in &groups {
        let prefix = lab_prefix(cfg);
        for &vi in idxs {
            let v = &variants[vi];
            let mut mine = Vec::new();
            for label in v.provider_labels(&prefix) {
                reference(&mut jobs, label.clone(), "provider");
                mine.push(label);
            }
            for key in v.cell_keys() {
                let label = format!("cell:{prefix}{key}");
                reference(&mut jobs, label.clone(), "cell");
                mine.push(label);
            }
            let alabel = format!("artifact:{}", v.id());
            reference(&mut jobs, alabel.clone(), "artifact");
            mine.push(alabel);
            variant_jobs.insert(v.id(), mine);
        }
    }
    let total_jobs = jobs.len();
    let shared_jobs = jobs.iter().filter(|j| j.refs >= 2).count();
    let unique_jobs = jobs.iter().filter(|j| j.refs == 1).count();
    SweepPlan {
        variant_ids: variants.iter().map(Variant::id).collect(),
        labs: groups.len(),
        jobs,
        total_jobs,
        shared_jobs,
        unique_jobs,
        variant_jobs,
    }
}

/// A content-addressed digest of the whole sweep (base config + grid),
/// naming the journal run directory — stable across resumes and thread
/// counts.
pub fn grid_digest(base: &LabConfig, grid: &GridSpec) -> String {
    let groups = lab_groups(base, &grid.expand(base));
    let mut text = grid.render();
    for (_, cfg, _) in &groups {
        text.push('\x1f');
        text.push_str(&Lab::new(cfg.clone()).shared().config_digest());
    }
    format!("{:016x}", kcb_util::fnv1a(text.as_bytes()))
}

/// One per-task metric row of a variant.
#[derive(Debug, Clone, PartialEq, serde::Serialize)]
pub struct TaskRow {
    /// Task number (1..=3).
    pub task: usize,
    /// Positive-class F1 (ICL: mean across prompt repeats).
    pub f1: f64,
    /// SD of F1 across prompt repeats (ICL only).
    pub f1_sd: Option<f64>,
    /// Fleiss-κ across prompt repeats (ICL only).
    pub kappa: Option<f64>,
}

/// Computes a variant's rows from (warm) lab caches. Runs on the driver
/// thread — the BERT/BioGPT paradigms need the `!Send` checkpoints.
fn compute_rows(lab: &Lab, v: &Variant) -> Vec<TaskRow> {
    let sc = SCENARIOS[v.scenario];
    TaskKind::ALL
        .iter()
        .map(|&t| match v.paradigm {
            Paradigm::Supervised => TaskRow {
                task: t.number(),
                f1: scenarios::scenario_cell(lab, t, sc, v.model, v.adapt),
                f1_sd: None,
                kappa: None,
            },
            Paradigm::FineTune => {
                TaskRow { task: t.number(), f1: scenarios::ft_f1(lab, t, sc), f1_sd: None, kappa: None }
            }
            Paradigm::Icl => {
                let oracle = v.oracle.unwrap_or("gpt-4-sim");
                let stats = if oracle == "biogpt-mini" {
                    scenarios::icl_stats_biogpt(lab, t)
                } else {
                    scenarios::icl_stats_warm(lab.shared(), t, oracle)
                };
                TaskRow { task: t.number(), f1: stats[0], f1_sd: Some(stats[1]), kappa: Some(stats[2]) }
            }
        })
        .collect()
}

/// Assembles the per-variant artifact. Depends only on the variant's own
/// config — never on sweep composition — so a K-variant sweep's artifact
/// is byte-identical to a 1-variant sweep of the same config.
fn variant_artifact(lab: &Lab, v: &Variant) -> Artifact {
    let rows = compute_rows(lab, v);
    let sc = SCENARIOS[v.scenario];
    let mut a = Artifact::new(
        v.id(),
        format!("Sweep variant {} — {} @ scenario {}", v.id(), v.series(), sc.label()),
    );
    let mut t = kcb_util::fmt::Table::new(
        format!("{} — F1 by task", v.series()),
        &["Task", "F1", "F1 sd", "kappa"],
    )
    .numeric_after(1);
    for r in &rows {
        t.row(vec![
            format!("Task {}", r.task),
            metric(r.f1),
            r.f1_sd.map(metric).unwrap_or_else(|| "-".to_string()),
            r.kappa.map(metric).unwrap_or_else(|| "-".to_string()),
        ]);
    }
    a.push_table(t);
    let json_rows: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            serde_json::json!({
                "task": r.task,
                "f1": r.f1,
                "f1_sd": r.f1_sd,
                "kappa": r.kappa,
            })
        })
        .collect();
    let variant = serde_json::json!({
        "id": v.id(),
        "seed": v.seed,
        "scale": v.scale,
        "scenario": v.scenario,
        "series": v.series(),
    });
    a.set_json(serde_json::json!({
        "variant": variant,
        "rows": serde_json::Value::Array(json_rows),
    }));
    a
}

/// Parses the rows back out of a (possibly journal-replayed) variant
/// artifact.
fn rows_from_artifact(a: &Artifact) -> Option<Vec<TaskRow>> {
    let rows = a.json.get("rows")?.as_array()?;
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        out.push(TaskRow {
            task: r.get("task")?.as_u64()? as usize,
            f1: r.get("f1")?.as_f64()?,
            f1_sd: r.get("f1_sd").and_then(|v| v.as_f64()),
            kappa: r.get("kappa").and_then(|v| v.as_f64()),
        });
    }
    Some(out)
}

/// What one variant cost inside the sweep.
#[derive(Debug, Clone, serde::Serialize)]
pub struct VariantOutcome {
    /// The variant id.
    pub id: String,
    /// Series label (paradigm + model/oracle).
    pub series: String,
    /// Master seed.
    pub seed: u64,
    /// Ontology scale.
    pub scale: f64,
    /// Scenario index.
    pub scenario: usize,
    /// Per-task metric rows.
    pub rows: Vec<TaskRow>,
    /// Whether the artifact replayed from the journal.
    pub replayed: bool,
    /// Jobs this variant references in the unified graph.
    pub jobs: usize,
    /// Of those, jobs shared with at least one other variant.
    pub shared_jobs: usize,
    /// Seconds spent in jobs only this variant references.
    pub exclusive_s: f64,
    /// Seconds attributed by splitting each shared job's time across its
    /// referencing variants (`Σ seconds / refs`).
    pub amortized_s: f64,
}

/// Seed-repeat aggregate for one (scale, scenario, series) group.
#[derive(Debug, Clone, serde::Serialize)]
pub struct GroupAggregate {
    /// Ontology scale.
    pub scale: f64,
    /// Scenario index.
    pub scenario: usize,
    /// Series label.
    pub series: String,
    /// Distinct seeds aggregated.
    pub n_seeds: usize,
    /// Mean F1 per task (1..=3), in task order.
    pub f1_mean: Vec<f64>,
    /// Sample SD of F1 per task across seeds (`None` with one seed).
    pub f1_sd: Vec<Option<f64>>,
    /// Fleiss-κ agreement of decile-quantised F1 across seeds (subjects =
    /// tasks, raters = seeds; `None` with fewer than 2 seeds or
    /// non-finite scores).
    pub fleiss_kappa: Option<f64>,
}

/// Welch t-test between two series within one (scale, scenario).
#[derive(Debug, Clone, serde::Serialize)]
pub struct PairTest {
    /// Ontology scale.
    pub scale: f64,
    /// Scenario index.
    pub scenario: usize,
    /// First series.
    pub a: String,
    /// Second series.
    pub b: String,
    /// Per-(seed, task) samples per side.
    pub n: usize,
    /// Welch t statistic.
    pub t: f64,
    /// Welch–Satterthwaite degrees of freedom.
    pub df: f64,
    /// Two-sided p-value.
    pub p_value: f64,
}

/// Everything a sweep run produced.
pub struct SweepOutcome {
    /// The dedup plan the graph was compiled from.
    pub plan: SweepPlan,
    /// Per-variant outcomes, in grid order.
    pub variants: Vec<VariantOutcome>,
    /// Seed-repeat aggregates (Fleiss-κ), in first-seen group order.
    pub aggregates: Vec<GroupAggregate>,
    /// Pairwise Welch t-tests between series.
    pub tests: Vec<PairTest>,
    /// Distinct labs instantiated.
    pub labs: usize,
    /// End-to-end scheduler wall-clock seconds.
    pub wall_s: f64,
    /// Run report (scheduler + caches summed across labs + journal).
    pub report: PlanReport,
    /// `(variant id, artifact)` in grid order.
    pub artifacts: Vec<(String, Artifact)>,
}

/// Execution knobs for [`run_sweep`].
pub struct SweepSpec {
    /// Scheduler worker threads.
    pub workers: usize,
    /// Run journal (resumable mid-sweep when set).
    pub journal: Option<JournalSpec>,
    /// Persistent checkpoint store shared by every lab.
    pub store: Option<Arc<crate::ckpt::CkptStore>>,
}

fn add_cache(into: &mut CacheStats, c: CacheStats) {
    into.memo_hits += c.memo_hits;
    into.memo_misses += c.memo_misses;
    into.forest_hits += c.forest_hits;
    into.forest_misses += c.forest_misses;
    into.ckpt_hits += c.ckpt_hits;
    into.ckpt_misses += c.ckpt_misses;
    into.provider_skips += c.provider_skips;
}

/// Schedules a variant's cells through the shared [`Cells`] builder.
fn variant_cells(cells: &mut Cells<'_, '_>, v: &Variant) -> Vec<JobId> {
    TaskKind::ALL
        .iter()
        .map(|&t| match v.paradigm {
            Paradigm::Supervised => cells.scenario_rf(t, v.scenario, v.model, v.adapt),
            Paradigm::FineTune => cells.scenario_ft(t, v.scenario),
            Paradigm::Icl => cells.icl(t, v.oracle.unwrap_or("gpt-4-sim")),
        })
        .collect()
}

/// Compiles the grid into one structure-shared DAG and runs it.
pub fn run_sweep(base: &LabConfig, grid: &GridSpec, spec: &SweepSpec) -> SweepOutcome {
    let splan = plan(base, grid);
    let variants = grid.expand(base);
    let groups = lab_groups(base, &variants);
    // Lab index per variant, and one lab per (seed, scale) group. Every
    // lab shares the content-addressed store — keys fold seed/scale, so
    // entries never collide across labs.
    let mut owner = vec![0usize; variants.len()];
    for (li, (_, _, idxs)) in groups.iter().enumerate() {
        for &vi in idxs {
            owner[vi] = li;
        }
    }
    let labs: Vec<Lab> = groups
        .iter()
        .map(|(_, cfg, _)| match &spec.store {
            Some(s) => Lab::with_checkpoints(cfg.clone(), Arc::clone(s)),
            None => Lab::new(cfg.clone()),
        })
        .collect();
    let prefixes: Vec<String> = groups.iter().map(|(_, cfg, _)| lab_prefix(cfg)).collect();
    let cfg_digests: Vec<String> = labs.iter().map(|l| l.shared().config_digest()).collect();
    let needs: Vec<ProviderNeed> = groups
        .iter()
        .map(|(_, _, idxs)| {
            let mut need = ProviderNeed::default();
            for &vi in idxs {
                need.union(&variants[vi].need());
            }
            need
        })
        .collect();

    let (mut jstats, writer, replay) = plan::open_journal(spec.journal.as_ref());
    let completed = replay.completed();
    let digests: Mutex<HashMap<String, String>> = Mutex::new(HashMap::new());
    let mut replayed: HashSet<String> = HashSet::new();

    let mut g = Graph::new();
    let mut provenance = Provenance::default();
    let provs: Vec<Providers> = labs
        .iter()
        .enumerate()
        .map(|(li, lab)| plan::providers(&mut g, lab, &prefixes[li], &needs[li], &mut provenance))
        .collect();
    let mut keyed: Vec<HashMap<String, JobId>> = vec![HashMap::new(); labs.len()];

    let mut slots: Vec<Rc<RefCell<Option<Artifact>>>> = Vec::with_capacity(variants.len());
    for (vi, v) in variants.iter().enumerate() {
        let li = owner[vi];
        let lab = &labs[li];
        let vid = v.id();
        let label = format!("artifact:{vid}");
        let slot: Rc<RefCell<Option<Artifact>>> = Rc::default();
        let out = slot.clone();

        // Journal replay: re-emit a committed variant artifact from its
        // persisted payload, digest-verified; fall back to reassembly.
        let replayed_artifact =
            spec.journal.as_ref().filter(|_| completed.contains(&label)).and_then(|s| {
                replay.digest_of(&label).and_then(|want| plan::load_artifact(&s.dir, &vid, want))
            });
        if let Some(a) = replayed_artifact {
            replayed.insert(label.clone());
            let mut a = Some(a);
            g.add_driver(label, &[], move || {
                *out.borrow_mut() = a.take();
            });
            slots.push(slot);
            continue;
        }

        let mut deps = {
            let mut cells = Cells {
                g: &mut g,
                keyed: &mut keyed[li],
                lab,
                shared: lab.shared(),
                prov: &provs[li],
                completed: &completed,
                replayed: &mut replayed,
                prefix: &prefixes[li],
                provenance: &mut provenance,
                cfg_digest: &cfg_digests[li],
            };
            variant_cells(&mut cells, v)
        };
        deps.sort_unstable();
        deps.dedup();
        let dep_labels: Vec<String> = deps.iter().map(|&d| g.label_of(d).to_string()).collect();
        provenance.job(&label, &cfg_digests[li], &dep_labels);
        let journal_dir = spec.journal.as_ref().map(|s| s.dir.clone());
        let digests_ref = &digests;
        let v = v.clone();
        g.add_driver(label.clone(), &deps, move || {
            let art = variant_artifact(lab, &v);
            if let Some(dir) = &journal_dir {
                match plan::persist_artifact(dir, &v.id(), &art) {
                    Ok(fnv) => {
                        digests_ref.lock().expect("digest table").insert(label.clone(), fnv);
                    }
                    Err(e) => eprintln!("warning: artifact payload persist failed: {e}"),
                }
                lab.save_checkpoints();
            }
            *out.borrow_mut() = Some(art);
        });
        slots.push(slot);
    }

    let provenance = provenance; // frozen: the hook only reads it
    let fault = spec.journal.as_ref().and_then(|s| s.fault);
    let hook = |d: &JobDone<'_>| {
        if replayed.contains(d.label) {
            return;
        }
        let Some(w) = &writer else { return };
        let digest =
            digests.lock().expect("digest table").get(d.label).cloned().unwrap_or_default();
        let n = w.append(d.label, d.kind, &digest, d.seconds, d.worker, provenance.inputs_of(d.label));
        if let Some(f) = fault {
            f.check(n);
        }
    };

    let run_span = kcb_obs::span("sched", "sweep:run")
        .arg("jobs", g.len())
        .arg("variants", variants.len())
        .arg("workers", spec.workers);
    let scheduler = g.run_hooked(spec.workers, writer.is_some().then_some(&hook as _));
    run_span.end();
    jstats.appended = writer.as_ref().map(journal::Writer::appended).unwrap_or(0);
    jstats.replayed = replayed.len() as u64;

    // Per-variant outcomes: rows parse back out of the artifact (replayed
    // ones byte-for-byte), cost attribution splits measured job seconds
    // by the plan's reference counts.
    let seconds: HashMap<&str, f64> =
        scheduler.jobs.iter().map(|j| (j.label.as_str(), j.seconds)).collect();
    let refs: HashMap<&str, usize> =
        splan.jobs.iter().map(|j| (j.label.as_str(), j.refs)).collect();
    let artifacts: Vec<(String, Artifact)> = variants
        .iter()
        .zip(&slots)
        .filter_map(|(v, slot)| slot.borrow_mut().take().map(|a| (v.id(), a)))
        .collect();
    let outcomes: Vec<VariantOutcome> = variants
        .iter()
        .enumerate()
        .map(|(vi, v)| {
            let vid = v.id();
            let rows = artifacts
                .iter()
                .find(|(id, _)| *id == vid)
                .and_then(|(_, a)| rows_from_artifact(a))
                .unwrap_or_else(|| compute_rows(&labs[owner[vi]], v));
            let mine = splan.variant_jobs.get(&vid).cloned().unwrap_or_default();
            let (mut exclusive_s, mut amortized_s, mut shared) = (0.0, 0.0, 0usize);
            for label in &mine {
                let r = refs.get(label.as_str()).copied().unwrap_or(1);
                let s = seconds.get(label.as_str()).copied().unwrap_or(0.0);
                if r >= 2 {
                    shared += 1;
                    amortized_s += s / r as f64;
                } else {
                    exclusive_s += s;
                    amortized_s += s;
                }
            }
            VariantOutcome {
                id: vid.clone(),
                series: v.series(),
                seed: v.seed,
                scale: v.scale,
                scenario: v.scenario,
                rows,
                replayed: replayed.contains(&format!("artifact:{vid}")),
                jobs: mine.len(),
                shared_jobs: shared,
                exclusive_s,
                amortized_s,
            }
        })
        .collect();

    let aggregates = aggregate(&outcomes);
    let tests = significance(&outcomes);

    let mut cache = CacheStats::default();
    let (mut ehits, mut emisses, mut eentries, mut econtended) = (0usize, 0usize, 0usize, 0usize);
    for lab in &labs {
        add_cache(&mut cache, lab.cache_stats());
        let (h, m) = lab.encodings().hit_miss();
        ehits += h;
        emisses += m;
        eentries += lab.encodings().len();
        econtended += lab.encodings().contended();
    }
    let wall_s = scheduler.wall_seconds;
    let report = PlanReport {
        scheduler,
        cache,
        encoding_hits: ehits,
        encoding_misses: emisses,
        encoding_entries: eentries,
        encoding_contended: econtended,
        checkpoints: labs
            .first()
            .and_then(|l| l.checkpoint_store().map(|s| s.events()))
            .unwrap_or_default(),
        journal: jstats,
    };
    plan::record_counters(&report);
    SweepOutcome {
        plan: splan,
        variants: outcomes,
        aggregates,
        tests,
        labs: labs.len(),
        wall_s,
        report,
        artifacts,
    }
}

/// Quantises an F1 into one of 11 decile categories for Fleiss-κ.
fn decile(f1: f64) -> usize {
    (f1.clamp(0.0, 1.0) * 10.0).round() as usize
}

fn sample_sd(xs: &[f64]) -> Option<f64> {
    if xs.len() < 2 {
        return None;
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
    Some(var.sqrt())
}

/// Aggregates variant outcomes across seeds: mean/SD per task plus the
/// paper's Fleiss-κ agreement (subjects = tasks, raters = seeds,
/// categories = decile-quantised F1).
pub fn aggregate(outcomes: &[VariantOutcome]) -> Vec<GroupAggregate> {
    // Group key in first-seen order: (scale, scenario, series).
    let mut order: Vec<(f64, usize, String)> = Vec::new();
    let mut by_group: HashMap<String, Vec<&VariantOutcome>> = HashMap::new();
    for o in outcomes {
        let key = format!("{}|{}|{}", o.scale, o.scenario, o.series);
        if !by_group.contains_key(&key) {
            order.push((o.scale, o.scenario, o.series.clone()));
        }
        by_group.entry(key).or_default().push(o);
    }
    order
        .into_iter()
        .map(|(scale, scenario, series)| {
            let key = format!("{scale}|{scenario}|{series}");
            let members = &by_group[&key];
            let seeds: HashSet<u64> = members.iter().map(|o| o.seed).collect();
            let n_tasks = members[0].rows.len();
            let mut f1_mean = Vec::with_capacity(n_tasks);
            let mut f1_sd = Vec::with_capacity(n_tasks);
            // answers[task] = one decile rating per seed (rater).
            let mut answers: Vec<Vec<usize>> = vec![Vec::new(); n_tasks];
            let mut finite = true;
            for ti in 0..n_tasks {
                let xs: Vec<f64> = members.iter().map(|o| o.rows[ti].f1).collect();
                finite &= xs.iter().all(|x| x.is_finite());
                f1_mean.push(xs.iter().sum::<f64>() / xs.len() as f64);
                f1_sd.push(sample_sd(&xs));
                answers[ti] = xs.iter().map(|&x| decile(x)).collect();
            }
            let fleiss = (seeds.len() >= 2 && members.len() == seeds.len() && finite)
                .then(|| fleiss_kappa(&ratings_from_answers(&answers, 11)));
            GroupAggregate {
                scale,
                scenario,
                series,
                n_seeds: seeds.len(),
                f1_mean,
                f1_sd,
                fleiss_kappa: fleiss,
            }
        })
        .collect()
}

/// Welch t-tests between every pair of series within one (scale,
/// scenario), over per-(seed, task) F1 samples. Pairs without enough
/// samples (or zero variance) are skipped — `welch_t_test` returns
/// `None` there.
pub fn significance(outcomes: &[VariantOutcome]) -> Vec<PairTest> {
    /// Per-series F1 samples, keyed by series name.
    type SeriesSamples = Vec<(String, Vec<f64>)>;
    let mut cells: Vec<((f64, usize), SeriesSamples)> = Vec::new();
    for o in outcomes {
        let ck = (o.scale, o.scenario);
        let samples: Vec<f64> = o.rows.iter().map(|r| r.f1).collect();
        let slot = match cells.iter_mut().find(|(k, _)| *k == ck) {
            Some((_, s)) => s,
            None => {
                cells.push((ck, Vec::new()));
                &mut cells.last_mut().expect("just pushed").1
            }
        };
        match slot.iter_mut().find(|(series, _)| *series == o.series) {
            Some((_, xs)) => xs.extend(samples),
            None => slot.push((o.series.clone(), samples)),
        }
    }
    let mut out = Vec::new();
    for ((scale, scenario), series) in &cells {
        for i in 0..series.len() {
            for j in (i + 1)..series.len() {
                let (ref a, ref xa) = series[i];
                let (ref b, ref xb) = series[j];
                if let Some(t) = welch_t_test(xa, xb) {
                    out.push(PairTest {
                        scale: *scale,
                        scenario: *scenario,
                        a: a.clone(),
                        b: b.clone(),
                        n: xa.len().min(xb.len()),
                        t: t.t,
                        df: t.df,
                        p_value: t.p_value,
                    });
                }
            }
        }
    }
    out
}

/// Sequential baseline: runs every variant in its own fresh lab (no
/// store, no journal, no cross-variant sharing) and returns per-variant
/// `(id, rows, seconds)` plus the total wall. This is exactly the cost a
/// user pays today for K single runs — the denominator of the sweep's
/// speedup claim.
pub fn run_sequential(base: &LabConfig, grid: &GridSpec) -> (Vec<(String, Vec<TaskRow>, f64)>, f64) {
    let variants = grid.expand(base);
    let t0 = std::time::Instant::now();
    let mut out = Vec::with_capacity(variants.len());
    for v in &variants {
        let vt0 = std::time::Instant::now();
        let lab = Lab::new(v.config(base));
        let rows = compute_rows(&lab, v);
        out.push((v.id(), rows, vt0.elapsed().as_secs_f64()));
    }
    (out, t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LabConfig {
        LabConfig::tiny()
    }

    #[test]
    fn grid_spec_parses_and_round_trips() {
        let g = GridSpec::parse("seeds=7,8;scenarios=0,2;paradigms=supervised,icl;oracles=gpt4;model=random")
            .unwrap();
        assert_eq!(g.seeds, vec![7, 8]);
        assert_eq!(g.scenarios, vec![0, 2]);
        assert_eq!(g.paradigms, vec![Paradigm::Supervised, Paradigm::Icl]);
        assert_eq!(g.oracles, vec!["gpt-4-sim"]);
        assert_eq!(g.model, "random");
        // model=random defaults adapt to naive.
        assert_eq!(g.adapt, "naive");
        let again = GridSpec::parse(&g.render()).unwrap();
        assert_eq!(again, g);
    }

    #[test]
    fn grid_spec_rejects_bad_terms() {
        for bad in [
            "seeds=x",
            "scales=0",
            "scales=9",
            "scenarios=5",
            "paradigms=zen",
            "oracles=claude",
            "model=elmo",
            "adapt=frob",
            "model=pubmedbert;adapt=task-oriented",
            "frobnicate=1",
            "seeds",
            "seeds=7,7",
        ] {
            assert!(GridSpec::parse(bad).is_err(), "accepted {bad}");
        }
        // pubmedbert without explicit adapt defaults to none.
        assert_eq!(GridSpec::parse("model=pubmedbert").unwrap().adapt, "none");
    }

    #[test]
    fn expansion_crosses_the_axes_in_order() {
        let g = GridSpec::parse("seeds=1,2;scenarios=0,1;paradigms=sup,icl;oracles=gpt4,biogpt")
            .unwrap();
        let vs = g.expand(&tiny());
        // 2 seeds × 2 scenarios × (1 supervised + 2 icl oracles) = 12.
        assert_eq!(vs.len(), 12);
        assert_eq!(vs[0].id(), "s1-x0.006-sc0-sup");
        assert_eq!(vs[1].id(), "s1-x0.006-sc0-icl-gpt-4-sim");
        assert_eq!(vs[2].id(), "s1-x0.006-sc0-icl-biogpt-mini");
        let ids: HashSet<String> = vs.iter().map(Variant::id).collect();
        assert_eq!(ids.len(), 12, "variant ids must be unique");
    }

    #[test]
    fn plan_shares_providers_and_scenario_independent_icl_cells() {
        let base = tiny();
        let g = GridSpec::parse("seeds=7;scenarios=0,1;paradigms=sup,icl;model=random").unwrap();
        let p = plan(&base, &g);
        assert_eq!(p.variant_ids.len(), 4);
        assert_eq!(p.labs, 1, "one (seed, scale) group = one lab");
        // Providers are referenced by all 4 variants; the ICL cells are
        // scenario-independent, so both ICL variants share all 3.
        let ontology = p.jobs.iter().find(|j| j.label.ends_with("ontology")).unwrap();
        assert_eq!(ontology.refs, 4);
        let icl_cells: Vec<_> = p.jobs.iter().filter(|j| j.label.contains("cell:") && j.label.contains("icl|")).collect();
        assert_eq!(icl_cells.len(), 3);
        assert!(icl_cells.iter().all(|j| j.refs == 2));
        assert!(p.shared_jobs > 0);
        assert_eq!(p.shared_jobs + p.unique_jobs, p.total_jobs);
        // Two labs when seeds differ; their jobs are disjoint by prefix.
        let g2 = GridSpec::parse("seeds=7,8;scenarios=0;paradigms=sup;model=random").unwrap();
        let p2 = plan(&base, &g2);
        assert_eq!(p2.labs, 2);
        assert_eq!(p2.shared_jobs, 0, "different seeds share nothing");
    }

    #[test]
    fn grid_digest_is_stable_and_thread_independent() {
        let g = GridSpec::parse("seeds=7;paradigms=sup;model=random").unwrap();
        let mut a = tiny();
        let mut b = tiny();
        a.rf.n_threads = 1;
        b.rf.n_threads = 8;
        assert_eq!(grid_digest(&a, &g), grid_digest(&b, &g));
        let g2 = GridSpec::parse("seeds=8;paradigms=sup;model=random").unwrap();
        assert_ne!(grid_digest(&a, &g), grid_digest(&a, &g2));
    }

    #[test]
    fn sweep_runs_and_matches_sequential_rows() {
        let base = tiny();
        let g = GridSpec::parse("seeds=7;scenarios=0,1;paradigms=sup,icl;model=random").unwrap();
        let spec = SweepSpec { workers: 2, journal: None, store: None };
        let outcome = run_sweep(&base, &g, &spec);
        assert_eq!(outcome.variants.len(), 4);
        assert_eq!(outcome.artifacts.len(), 4);
        // The executed graph must contain exactly the planned labels.
        let planned: HashSet<&str> = outcome.plan.jobs.iter().map(|j| j.label.as_str()).collect();
        let executed: HashSet<&str> =
            outcome.report.scheduler.jobs.iter().map(|j| j.label.as_str()).collect();
        assert_eq!(planned, executed);
        // Rows match K fresh sequential runs bit-for-bit.
        let (seq, _) = run_sequential(&base, &g);
        for (o, (sid, srows, _)) in outcome.variants.iter().zip(&seq) {
            assert_eq!(&o.id, sid);
            assert_eq!(&o.rows, srows, "sweep rows diverge for {sid}");
        }
        // Attribution: every variant touches at least one shared job
        // (providers), and the sums are finite.
        for o in &outcome.variants {
            assert!(o.shared_jobs > 0, "{} shares nothing", o.id);
            assert!(o.exclusive_s.is_finite() && o.amortized_s >= 0.0);
        }
        // ICL cells are scenario-independent: both scenarios' ICL
        // variants carry identical rows.
        let icl: Vec<_> =
            outcome.variants.iter().filter(|o| o.series.starts_with("icl")).collect();
        assert_eq!(icl.len(), 2);
        assert_eq!(icl[0].rows, icl[1].rows);
    }

    #[test]
    fn aggregates_and_significance_over_seed_repeats() {
        let mk = |seed: u64, series: &str, f1: &[f64]| VariantOutcome {
            id: format!("s{seed}-{series}"),
            series: series.to_string(),
            seed,
            scale: 0.006,
            scenario: 0,
            rows: f1
                .iter()
                .enumerate()
                .map(|(i, &x)| TaskRow { task: i + 1, f1: x, f1_sd: None, kappa: None })
                .collect(),
            replayed: false,
            jobs: 0,
            shared_jobs: 0,
            exclusive_s: 0.0,
            amortized_s: 0.0,
        };
        let outcomes = vec![
            mk(1, "supervised(random/naive)", &[0.8, 0.7, 0.6]),
            mk(2, "supervised(random/naive)", &[0.82, 0.71, 0.62]),
            mk(1, "icl(gpt-4-sim)", &[0.9, 0.88, 0.91]),
            mk(2, "icl(gpt-4-sim)", &[0.89, 0.9, 0.92]),
        ];
        let aggs = aggregate(&outcomes);
        assert_eq!(aggs.len(), 2);
        assert_eq!(aggs[0].n_seeds, 2);
        assert!((aggs[0].f1_mean[0] - 0.81).abs() < 1e-12);
        assert!(aggs[0].f1_sd[0].unwrap() > 0.0);
        // Near-identical deciles across seeds → high agreement.
        let k = aggs[0].fleiss_kappa.expect("two seeds give kappa");
        assert!(k.is_finite());
        let tests = significance(&outcomes);
        assert_eq!(tests.len(), 1);
        assert_eq!(tests[0].n, 6);
        assert!(tests[0].p_value < 0.05, "clearly separated groups: {}", tests[0].p_value);
    }

    #[test]
    fn single_seed_groups_get_no_kappa_or_tests_with_flat_variance() {
        let o = VariantOutcome {
            id: "x".into(),
            series: "fine-tuning".into(),
            seed: 1,
            scale: 0.006,
            scenario: 0,
            rows: vec![TaskRow { task: 1, f1: 0.5, f1_sd: None, kappa: None }],
            replayed: false,
            jobs: 0,
            shared_jobs: 0,
            exclusive_s: 0.0,
            amortized_s: 0.0,
        };
        let aggs = aggregate(std::slice::from_ref(&o));
        assert_eq!(aggs[0].n_seeds, 1);
        assert!(aggs[0].fleiss_kappa.is_none());
        assert!(aggs[0].f1_sd[0].is_none());
        assert!(significance(std::slice::from_ref(&o)).is_empty());
    }
}
