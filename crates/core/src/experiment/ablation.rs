//! Ablation studies over the reproduction's own design choices.
//!
//! These go beyond the paper's artifacts: they quantify how sensitive the
//! headline results are to the knobs our mini-scale substitution
//! introduces — domain-corpus size (the 7,201-papers stand-in), embedding
//! width (48 here vs 300 in the paper) and forest capacity. Each returns
//! an [`Artifact`] and is wired into `repro` as `ablation-corpus`,
//! `ablation-dim` and `ablation-forest`.

use crate::adapt::Adaptation;
use crate::compose::TokenAvgEncoder;
use crate::lab::Lab;
use crate::paradigm::ml::run_forest;
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_embed::word2vec;
use kcb_ml::RandomForestConfig;
use kcb_text::{corpus::tokenize_corpus, ChemTokenizer, CorpusConfig, DomainCorpusGenerator};
use kcb_util::fmt::{metric, Table};

fn task1_f1_with_w2v(
    lab: &Lab,
    sentences: &[Vec<String>],
    dim: usize,
    rf: &RandomForestConfig,
) -> f64 {
    let cfg = word2vec::Word2VecConfig {
        dim,
        epochs: lab.config().embed_epochs,
        seed: lab.config().seed,
        ..word2vec::Word2VecConfig::default()
    };
    let w2v = word2vec::train("w2v-ablate", sentences, &cfg);
    let enc = TokenAvgEncoder::new(&w2v, Adaptation::Naive);
    let split = lab.split(TaskKind::RandomNegatives);
    let cap = split.train.len().min(lab.config().train_cap);
    run_forest(lab.ontology(), &split.train[..cap], &split.test, &enc, rf).metrics.f1
}

/// Ablation: how much domain corpus does W2V-Chem need before the paper's
/// "small task-related corpus suffices" claim kicks in?
pub fn ablation_corpus(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Ablation: corpus size",
        "Task-1 F1 of RF + W2V-Chem (naive) as the domain corpus grows",
    );
    let mut t =
        Table::new("W2V-Chem corpus sweep", &["#documents", "#sentences", "F1"]).numeric_after(0);
    let mut json = Vec::new();
    let full_docs = lab.config().n_domain_docs;
    for frac in [0.05, 0.2, 0.5, 1.0] {
        let n_docs = ((full_docs as f64) * frac).round().max(4.0) as usize;
        let cfg = CorpusConfig { n_docs, seed: lab.config().seed, ..CorpusConfig::default() };
        let docs = DomainCorpusGenerator::new(lab.ontology(), cfg).generate();
        let sentences = tokenize_corpus(&docs, &ChemTokenizer::new());
        let f1 =
            task1_f1_with_w2v(lab, &sentences, lab.config().embed_dim, &lab.config().rf);
        t.row(vec![n_docs.to_string(), sentences.len().to_string(), metric(f1)]);
        json.push(serde_json::json!({"docs": n_docs, "sentences": sentences.len(), "f1": f1}));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Ablation: embedding width (the paper uses 300 dims; the mini default is
/// 48 — how much does that cost?).
pub fn ablation_dim(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Ablation: embedding width",
        "Task-1 F1 of RF + W2V-Chem (naive) across embedding dimensions",
    );
    let mut t = Table::new("dimension sweep", &["dim", "F1"]).numeric_after(0);
    let sentences = lab.domain_sentences();
    let mut json = Vec::new();
    for dim in [8, 16, 48, 96] {
        let f1 = task1_f1_with_w2v(lab, sentences, dim, &lab.config().rf);
        t.row(vec![dim.to_string(), metric(f1)]);
        json.push(serde_json::json!({"dim": dim, "f1": f1}));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Ablation: forest capacity (trees × depth) on task 1 with the random
/// embedding baseline — how cheap can the strong baseline get?
pub fn ablation_forest(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Ablation: forest capacity",
        "Task-1 F1 of RF + random embeddings across tree counts and depths",
    );
    let mut t = Table::new("forest sweep", &["trees", "max depth", "F1"]).numeric_after(0);
    let split = lab.split(TaskKind::RandomNegatives);
    let cap = split.train.len().min(lab.config().train_cap);
    let enc = TokenAvgEncoder::new(lab.random(), Adaptation::Naive);
    let mut json = Vec::new();
    for (trees, depth) in [(5, 8), (20, 12), (40, 18), (80, 24)] {
        let rf = RandomForestConfig {
            n_trees: trees,
            max_depth: depth,
            ..lab.config().rf
        };
        let run = run_forest(lab.ontology(), &split.train[..cap], &split.test, &enc, &rf);
        t.row(vec![trees.to_string(), depth.to_string(), metric(run.metrics.f1)]);
        json.push(serde_json::json!({"trees": trees, "depth": depth, "f1": run.metrics.f1}));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Ablation: adaptation strategy across data-availability scenarios — the
/// paper's open question (§4: naive wins on full data, task-oriented wins
/// in the simulations; "further analysis on this observation would assist
/// in the development of better token selection algorithms").
pub fn ablation_adaptation(lab: &Lab) -> Artifact {
    use crate::dataset::SCENARIOS;
    let mut a = Artifact::new(
        "Ablation: adaptation strategy",
        "Task-1 F1 of RF + W2V-Chem under each adaptation, across the five scenarios",
    );
    let mut t = Table::new(
        "adaptation × scenario",
        &["Scenario", "none", "naive", "task-oriented"],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for sc in SCENARIOS {
        let mut row = vec![sc.label()];
        for adapt in ["none", "naive", "task-oriented"] {
            let f1 = crate::experiment::scenarios::scenario_cell(
                lab,
                TaskKind::RandomNegatives,
                sc,
                "w2v-chem",
                adapt,
            );
            row.push(metric(f1));
            json.push(serde_json::json!({
                "scenario": sc.label(), "adaptation": adapt, "f1": f1,
            }));
        }
        t.row(row);
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn corpus_ablation_shows_monotone_trend() {
        let lab = Lab::new(LabConfig::tiny());
        let a = ablation_corpus(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 4);
        let first = rows.first().unwrap()["f1"].as_f64().unwrap();
        let last = rows.last().unwrap()["f1"].as_f64().unwrap();
        // More corpus should not make things clearly worse.
        assert!(last >= first - 0.05, "corpus growth hurt: {first} -> {last}");
    }

    #[test]
    fn adaptation_ablation_covers_grid() {
        let lab = Lab::new(LabConfig::tiny());
        let a = ablation_adaptation(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 15); // 5 scenarios × 3 adaptations
        for r in rows {
            let f1 = r["f1"].as_f64().unwrap();
            assert!((0.0..=1.0).contains(&f1), "{r}");
        }
    }

    #[test]
    fn forest_ablation_improves_with_capacity() {
        let lab = Lab::new(LabConfig::tiny());
        let a = ablation_forest(&lab);
        let rows = a.json.as_array().unwrap();
        let tiny = rows.first().unwrap()["f1"].as_f64().unwrap();
        let big = rows.last().unwrap()["f1"].as_f64().unwrap();
        assert!(big >= tiny - 0.02, "capacity hurt: {tiny} -> {big}");
        for r in rows {
            assert!(r["f1"].as_f64().unwrap() > 0.6);
        }
    }
}
