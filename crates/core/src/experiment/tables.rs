//! Dataset- and ontology-statistics artifacts: Table 2 and Tables A1–A5.

use crate::lab::Lab;
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_embed::{oov_rate, EmbeddingModel};
use kcb_ontology::{OntologyStats, Relation, SubOntology};
use kcb_text::ChemTokenizer;
use kcb_util::fmt::{count, percent, Table};
use std::collections::HashSet;

/// Table 2: statistics of the generated task datasets and their 9:1
/// supervised-learning splits.
pub fn table2(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table 2", "Statistics of generated datasets for three tasks");
    let mut t = Table::new(
        "Triples / training / test (9:1 stratified split)",
        &[
            "Task",
            "#positive",
            "#negative",
            "train #pos",
            "train #neg",
            "test #pos",
            "test #neg",
            "Total",
        ],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let d = lab.task(task);
        let s = lab.split(task);
        let tp = s.train.iter().filter(|e| e.label).count();
        let xp = s.test.iter().filter(|e| e.label).count();
        t.row(vec![
            format!("Task {}", task.number()),
            count(d.n_positive()),
            count(d.n_negative()),
            count(tp),
            count(s.train.len() - tp),
            count(xp),
            count(s.test.len() - xp),
            count(d.len()),
        ]);
        json.push(serde_json::json!({
            "task": task.number(),
            "positive": d.n_positive(),
            "negative": d.n_negative(),
            "train": s.train.len(),
            "test": s.test.len(),
            "total": d.len(),
        }));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A1: the ChEBI sub-ontologies with generated entity counts.
pub fn table_a1(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A1", "Included ChEBI sub-ontologies");
    let mut t = Table::new(
        "Sub-ontologies",
        &["Sub-ontology", "Definition", "Examples", "Entities (generated)"],
    )
    .numeric_after(3);
    let o = lab.ontology();
    let mut json = Vec::new();
    for so in SubOntology::ALL {
        let n = o.entities_of(so).count();
        t.row(vec![
            so.name().to_string(),
            so.definition().to_string(),
            so.examples().to_string(),
            count(n),
        ]);
        json.push(serde_json::json!({"name": so.name(), "entities": n}));
    }
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A2: the relationship-type catalogue.
pub fn table_a2(_lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A2", "Included ChEBI relationship types");
    let mut t = Table::new("Relationships", &["Relationship", "Description", "Example"]);
    for r in Relation::ALL {
        t.row(vec![
            r.phrase().to_string(),
            r.description().to_string(),
            r.example().to_string(),
        ]);
    }
    a.push_table(t);
    a.set_json(serde_json::json!(Relation::ALL
        .iter()
        .map(|r| r.ident())
        .collect::<Vec<_>>()));
    a
}

/// Table A3: triples per relationship type (generated vs paper).
pub fn table_a3(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A3", "Numbers of triples per relationship type");
    let stats = OntologyStats::compute(lab.ontology());
    let scale = lab.config().scale;
    let mut t = Table::new(
        format!("Relationship mix at scale {scale} (paper column scaled for comparison)"),
        &["Relationship type", "Generated", "Paper × scale"],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for (name, n) in &stats.triples_by_relation {
        let ident: String = name.clone();
        let paper = Relation::ALL
            .iter()
            .find(|r| r.ident() == ident)
            .map(|r| ((r.chebi_count() as f64) * scale).round() as usize)
            .unwrap_or(0);
        t.row(vec![name.replace('_', " "), count(*n), count(paper)]);
        json.push(serde_json::json!({"relation": name, "generated": n, "paper_scaled": paper}));
    }
    t.row(vec![
        "Total #triples".into(),
        count(stats.n_triples),
        count((318_438.0 * scale).round() as usize),
    ]);
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A4: embedding vocabulary sizes, dimensions and OOV statistics
/// against the unique tokens of the ontology.
pub fn table_a4(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A4", "Embedding model size and out-of-vocabulary statistics");
    // Unique tokens across all entity names (the paper's 47,701 analogue).
    let tk = ChemTokenizer::new();
    let mut unique: HashSet<String> = HashSet::new();
    for e in lab.ontology().entities() {
        unique.extend(tk.tokenize(&e.name));
    }
    let tokens: Vec<&str> = {
        let mut v: Vec<&str> = unique.iter().map(String::as_str).collect();
        v.sort_unstable();
        v
    };
    let mut t = Table::new(
        format!("{} unique ontology tokens", count(tokens.len())),
        &["Embedding model", "Vocabulary size", "Dimensions", "OOV", "OOV %"],
    )
    .numeric_after(1);
    let mut json = Vec::new();
    for name in crate::lab::EMBEDDING_NAMES {
        let model: &dyn EmbeddingModel = lab.embedding(name);
        let (oov, total) = oov_rate(model, tokens.iter().copied());
        let vocab = if model.vocab_size() == usize::MAX {
            "unbounded".to_string()
        } else {
            count(model.vocab_size())
        };
        t.row(vec![
            name.to_string(),
            vocab,
            model.dim().to_string(),
            count(oov),
            percent(oov as f64 / total as f64),
        ]);
        json.push(serde_json::json!({
            "model": name,
            "dim": model.dim(),
            "oov": oov,
            "total": total,
        }));
    }
    // The WordPiece (PubmedBERT-mini) row: subword tokenizers have no OOV.
    t.row(vec![
        "pubmedbert-mini".into(),
        count(lab.wordpiece().vocab_size()),
        lab.config().bert_arch.d_model.to_string(),
        "-".into(),
        "-".into(),
    ]);
    a.push_table(t);
    a.set_json(serde_json::Value::Array(json));
    a
}

/// Table A5: the top-50 most frequent tokens in head and tail entities.
pub fn table_a5(lab: &Lab) -> Artifact {
    let mut a = Artifact::new("Table A5", "Most frequent tokens in head and tail entities");
    let positives = crate::task::positive_triples(lab.ontology(), TaskKind::RandomNegatives);
    a.push_table(kcb_text::freq::table_a5(lab.ontology(), &positives, 50));
    let tf = kcb_text::freq::TokenFrequency::compute(
        lab.ontology(),
        &positives,
        &ChemTokenizer::new(),
    );
    a.set_json(serde_json::json!({
        "head": tf.top_head(50),
        "tail": tf.top_tail(50),
    }));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn statistics_artifacts_render_at_tiny_scale() {
        let lab = Lab::new(LabConfig::tiny());
        for (id, artifact) in [
            ("Table 2", table2(&lab)),
            ("Table A1", table_a1(&lab)),
            ("Table A2", table_a2(&lab)),
            ("Table A3", table_a3(&lab)),
            ("Table A5", table_a5(&lab)),
        ] {
            let text = artifact.render();
            assert!(text.contains(id), "{id} header missing");
            assert!(text.len() > 100, "{id} suspiciously empty");
            assert!(!artifact.json.is_null(), "{id} lacks JSON payload");
        }
    }

    #[test]
    fn table2_totals_are_consistent() {
        let lab = Lab::new(LabConfig::tiny());
        let a = table2(&lab);
        let rows = a.json.as_array().unwrap();
        for row in rows {
            let pos = row["positive"].as_u64().unwrap();
            let neg = row["negative"].as_u64().unwrap();
            assert_eq!(pos + neg, row["total"].as_u64().unwrap());
            assert_eq!(
                row["train"].as_u64().unwrap() + row["test"].as_u64().unwrap(),
                row["total"].as_u64().unwrap()
            );
        }
    }

    #[test]
    fn table_a4_generic_glove_has_higher_oov_than_domain_models() {
        let lab = Lab::new(LabConfig::tiny());
        let a = table_a4(&lab);
        let rows = a.json.as_array().unwrap();
        let oov_pct = |name: &str| -> f64 {
            let r = rows.iter().find(|r| r["model"] == name).unwrap();
            r["oov"].as_f64().unwrap() / r["total"].as_f64().unwrap()
        };
        // Paper Table A4 ordering: GloVe (87.8%) > W2V-Chem (71.2%) >
        // GloVe-Chem (64.2%) > BioWordVec (47.8%); random has none.
        assert!(oov_pct("glove") > oov_pct("glove-chem"), "generic worse than adapted");
        assert_eq!(oov_pct("random"), 0.0);
    }
}
