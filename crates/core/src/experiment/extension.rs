//! Extension experiments beyond the paper's artifacts.
//!
//! The paper's future-work section names one concrete follow-up:
//! "Future work should evaluate the use of open source GPT models like
//! Meta's Llama2." [`ext_llama2`] runs the full Table-5 protocol over the
//! Llama-2-class oracle profile alongside the two calibrated GPT profiles,
//! answering where an open-weight mid-tier model would land.

use crate::lab::Lab;
use crate::paradigm::icl::{split_prompt_setup, QueryPolicy};
use crate::report::Artifact;
use crate::task::TaskKind;
use kcb_icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant};
use kcb_util::fmt::{mean_sd, metric, percent, Table};

/// Extension: the paper's Table 5 protocol with a Llama-2-class
/// open-weight oracle in the line-up.
pub fn ext_llama2(lab: &Lab) -> Artifact {
    let mut a = Artifact::new(
        "Extension: Llama2-sim",
        "The paper's future work — an open-weight mid-tier model under the Table 5 protocol",
    );
    let oracles = [
        LlmOracle::new(OracleProfile::gpt35_sim()),
        LlmOracle::new(OracleProfile::llama2_sim()),
        LlmOracle::new(OracleProfile::gpt4_sim()),
    ];
    let mut json = Vec::new();
    for task in TaskKind::ALL {
        let mut t = Table::new(
            format!("Task {} — {}", task.number(), task.describe()),
            &["Model", "Prompt", "Accuracy (SD)", "Unclassified (%)", "F1 (SD)", "Kappa"],
        )
        .numeric_after(2);
        let (builder, items) = split_prompt_setup(
            lab.ontology(),
            lab.split(task),
            QueryPolicy { n_per_class: lab.config().icl_queries, ..QueryPolicy::default() },
            lab.config().seed,
        );
        for oracle in &oracles {
            for variant in PromptVariant::ALL {
                let r = run_protocol(
                    oracle,
                    &builder,
                    &items,
                    variant,
                    lab.config().icl_repeats,
                    lab.config().seed,
                );
                t.row(vec![
                    r.model.clone(),
                    r.variant.clone(),
                    mean_sd(r.accuracy_mean, r.accuracy_sd),
                    format!("{} ({})", r.n_unclassified, percent(r.pct_unclassified)),
                    mean_sd(r.f1_mean, r.f1_sd),
                    metric(r.kappa),
                ]);
                json.push(serde_json::to_value(&r).expect("serializable"));
            }
        }
        a.push_table(t);
    }
    a.set_json(serde_json::Value::Array(json));
    a
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lab::LabConfig;

    #[test]
    fn llama2_lands_between_gpt35_and_gpt4_below() {
        let lab = Lab::new(LabConfig::tiny());
        let a = ext_llama2(&lab);
        let rows = a.json.as_array().unwrap();
        assert_eq!(rows.len(), 27);
        // Averaged over tasks at variant #1: gpt4 > gpt35 > llama2.
        let mean_acc = |model: &str| -> f64 {
            let accs: Vec<f64> = rows
                .iter()
                .filter(|r| r["model"] == model && r["variant"] == "#1")
                .map(|r| r["accuracy_mean"].as_f64().unwrap())
                .collect();
            accs.iter().sum::<f64>() / accs.len() as f64
        };
        let (g4, g35, ll) = (mean_acc("gpt-4-sim"), mean_acc("gpt-3.5-sim"), mean_acc("llama2-sim"));
        assert!(g4 > g35 && g35 > ll, "ordering: {g4:.3} / {g35:.3} / {ll:.3}");
        assert!(ll > 0.5, "llama2 is better than chance: {ll:.3}");
    }
}
