//! Splits and data-availability scenarios (§3.2 and §2.8).

use crate::task::{LabeledTriple, TaskDataset, TaskKind};
use kcb_util::Rng;
use serde::Serialize;

/// A train/test (or train/val/test) partition of a task dataset.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training examples.
    pub train: Vec<LabeledTriple>,
    /// Validation examples (empty for two-way splits).
    pub validation: Vec<LabeledTriple>,
    /// Test examples.
    pub test: Vec<LabeledTriple>,
    /// The task.
    pub task: TaskKind,
}

impl Split {
    /// Stratified 9:1 train/test split (the supervised-learning setup).
    pub fn nine_to_one(d: &TaskDataset, seed: u64) -> Self {
        Self::stratified(d, &[9.0, 0.0, 1.0], seed)
    }

    /// Stratified 8:1:1 train/validation/test split (the fine-tuning
    /// setup).
    pub fn eight_one_one(d: &TaskDataset, seed: u64) -> Self {
        Self::stratified(d, &[8.0, 1.0, 1.0], seed)
    }

    /// Stratified split with arbitrary `[train, validation, test]`
    /// proportions.
    pub fn stratified(d: &TaskDataset, weights: &[f64; 3], seed: u64) -> Self {
        let mut rng = Rng::seed_stream(seed, 0x5971);
        let mut pos: Vec<LabeledTriple> =
            d.examples.iter().copied().filter(|e| e.label).collect();
        let mut neg: Vec<LabeledTriple> =
            d.examples.iter().copied().filter(|e| !e.label).collect();
        rng.shuffle(&mut pos);
        rng.shuffle(&mut neg);
        let total: f64 = weights.iter().sum();
        let cut = |n: usize, w: f64| -> usize { ((n as f64) * w / total).round() as usize };

        let mut out = [Vec::new(), Vec::new(), Vec::new()];
        for class in [pos, neg] {
            let n = class.len();
            let n_train = cut(n, weights[0]);
            let n_val = cut(n, weights[1]);
            for (i, e) in class.into_iter().enumerate() {
                if i < n_train {
                    out[0].push(e);
                } else if i < n_train + n_val {
                    out[1].push(e);
                } else {
                    out[2].push(e);
                }
            }
        }
        let [mut train, mut validation, mut test] = out;
        // Interleave classes.
        rng.shuffle(&mut train);
        rng.shuffle(&mut validation);
        rng.shuffle(&mut test);
        Self { train, validation, test, task: d.task }
    }
}

/// One of the §2.8 data-availability scenarios: a train:test split ratio
/// combined with a positive:negative imbalance imposed on the training
/// data.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct Scenario {
    /// Train size as a multiple of the (constant) test size.
    pub split: f64,
    /// Positive-to-negative ratio in the training data (1.0 = balanced,
    /// 0.125 = 1:8).
    pub pos_ratio: f64,
}

impl Scenario {
    /// Display label like `"Split 9:1, P:N 1:1"`.
    pub fn label(&self) -> String {
        let split = if self.split == self.split.trunc() {
            format!("{}:1", self.split as usize)
        } else {
            format!("{}:1", self.split)
        };
        let pn = if self.pos_ratio >= 1.0 {
            "1:1".to_string()
        } else {
            format!("1:{}", (1.0 / self.pos_ratio).round() as usize)
        };
        format!("Split {split}, P:N {pn}")
    }
}

/// The five scenarios of Figure 3: from abundant/balanced to scarce and
/// heavily imbalanced.
pub const SCENARIOS: [Scenario; 5] = [
    Scenario { split: 9.0, pos_ratio: 1.0 },
    Scenario { split: 7.0, pos_ratio: 0.75 },
    Scenario { split: 4.0, pos_ratio: 0.5 },
    Scenario { split: 1.0, pos_ratio: 0.25 },
    Scenario { split: 0.5, pos_ratio: 0.125 },
];

/// Builds the §2.8 experiment data: a reduced pool (`fraction` of the full
/// dataset), a constant test set (one "unit" of the pool), and a training
/// set sized and imbalanced per the scenario.
pub fn scenario_split(d: &TaskDataset, fraction: f64, sc: Scenario, seed: u64) -> Split {
    assert!(fraction > 0.0 && fraction <= 1.0, "fraction in (0,1]");
    let mut rng = Rng::seed_stream(seed, 0x5ce0);
    // Reduced pool, stratified.
    let mut pos: Vec<LabeledTriple> = d.examples.iter().copied().filter(|e| e.label).collect();
    let mut neg: Vec<LabeledTriple> = d.examples.iter().copied().filter(|e| !e.label).collect();
    rng.shuffle(&mut pos);
    rng.shuffle(&mut neg);
    pos.truncate(((pos.len() as f64) * fraction).round() as usize);
    neg.truncate(((neg.len() as f64) * fraction).round() as usize);

    // Constant balanced test set = pool / 10. Degenerate pools (a class
    // with < 2 examples after reduction) cannot support a scenario sweep.
    let test_per_class =
        (((pos.len().min(neg.len()) as f64) / 10.0).round() as usize).max(1);
    assert!(
        pos.len() > test_per_class && neg.len() > test_per_class,
        "scenario_split: reduced pool too small ({} pos / {} neg for a test draw of {});          raise `fraction` or the dataset size",
        pos.len(),
        neg.len(),
        test_per_class
    );
    let test: Vec<LabeledTriple> = pos
        .drain(..test_per_class)
        .chain(neg.drain(..test_per_class))
        .collect();

    // Training budget: split × test size, imbalanced pos_ratio : 1.
    let budget = ((sc.split * (2 * test_per_class) as f64).round() as usize)
        .min(pos.len() + neg.len());
    let n_pos = (((budget as f64) * sc.pos_ratio / (1.0 + sc.pos_ratio)).round() as usize)
        .min(pos.len())
        .max(1);
    let n_neg = budget.saturating_sub(n_pos).min(neg.len()).max(1);
    let mut train: Vec<LabeledTriple> =
        pos[..n_pos].iter().copied().chain(neg[..n_neg].iter().copied()).collect();
    rng.shuffle(&mut train);
    let mut test = test;
    rng.shuffle(&mut test);
    Split { train, validation: Vec::new(), test, task: d.task }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kcb_ontology::{SyntheticConfig, SyntheticGenerator};

    fn dataset() -> TaskDataset {
        let o = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 33 })
            .unwrap()
            .generate();
        TaskDataset::generate(&o, TaskKind::RandomNegatives, 1)
    }

    #[test]
    fn nine_to_one_partitions_and_stratifies() {
        let d = dataset();
        let s = Split::nine_to_one(&d, 5);
        assert!(s.validation.is_empty());
        assert_eq!(s.train.len() + s.test.len(), d.len());
        let ratio = s.train.len() as f64 / s.test.len() as f64;
        assert!((ratio - 9.0).abs() < 0.3, "ratio {ratio}");
        let pos_rate =
            s.test.iter().filter(|e| e.label).count() as f64 / s.test.len() as f64;
        assert!((pos_rate - 0.5).abs() < 0.03, "test positive rate {pos_rate}");
    }

    #[test]
    fn eight_one_one_has_three_parts() {
        let d = dataset();
        let s = Split::eight_one_one(&d, 6);
        assert!(!s.validation.is_empty());
        assert_eq!(s.train.len() + s.validation.len() + s.test.len(), d.len());
        let r = s.train.len() as f64 / s.validation.len() as f64;
        assert!((r - 8.0).abs() < 0.5, "train/val ratio {r}");
    }

    #[test]
    fn splits_are_disjoint() {
        let d = dataset();
        let s = Split::eight_one_one(&d, 7);
        let key = |e: &LabeledTriple| (e.triple.key(), e.label);
        let train: std::collections::HashSet<_> = s.train.iter().map(key).collect();
        for e in s.validation.iter().chain(&s.test) {
            assert!(!train.contains(&key(e)));
        }
    }

    #[test]
    fn scenarios_shrink_and_imbalance_training() {
        let d = dataset();
        let mut last_size = usize::MAX;
        for sc in SCENARIOS {
            let s = scenario_split(&d, 0.5, sc, 8);
            assert!(s.train.len() < last_size, "training must shrink across scenarios");
            last_size = s.train.len();
            let pos = s.train.iter().filter(|e| e.label).count() as f64;
            let neg = s.train.len() as f64 - pos;
            let ratio = pos / neg;
            assert!(
                (ratio - sc.pos_ratio).abs() < sc.pos_ratio * 0.35 + 0.05,
                "{}: measured P:N {ratio} wanted {}",
                sc.label(),
                sc.pos_ratio
            );
        }
    }

    #[test]
    fn scenario_test_sets_are_constant_and_balanced() {
        let d = dataset();
        let sizes: Vec<usize> = SCENARIOS
            .iter()
            .map(|&sc| scenario_split(&d, 0.5, sc, 8).test.len())
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] == w[1]), "test sizes vary: {sizes:?}");
        let s = scenario_split(&d, 0.5, SCENARIOS[4], 8);
        let pos = s.test.iter().filter(|e| e.label).count();
        assert_eq!(pos * 2, s.test.len());
    }

    #[test]
    fn scenario_labels_render() {
        assert_eq!(SCENARIOS[0].label(), "Split 9:1, P:N 1:1");
        assert_eq!(SCENARIOS[4].label(), "Split 0.5:1, P:N 1:8");
    }

    #[test]
    fn deterministic_per_seed() {
        let d = dataset();
        let a = Split::nine_to_one(&d, 11);
        let b = Split::nine_to_one(&d, 11);
        assert_eq!(a.train, b.train);
        let c = Split::nine_to_one(&d, 12);
        assert_ne!(a.train, c.train);
    }
}
