//! The scheduler's determinism contract: artifacts produced through the
//! cell DAG are byte-identical at any worker count — cell values are pure
//! functions of the lab seed, never of scheduling — and warm cells are
//! deduplicated so the assembly pass runs against hot caches.
//!
//! The 4-worker leg runs with `kcb_obs` recording enabled while the
//! 1-worker leg runs with it off, so the byte-for-byte comparison also
//! proves telemetry is strictly out-of-band: turning the recorder on
//! must never change artifact bytes.

use kcb_core::experiment::plan::run_scheduled;
use kcb_core::lab::{Lab, LabConfig};

/// Ids chosen to cover every job flavour: dataset statistics
/// (provider-only), the Task-1 forest grid (parallel + PubmedBERT driver
/// cells), the LSTM row (parallel cells), and the scenario sweep
/// (parallel forest cells, driver fine-tuning cells, GPT-4 reference).
const IDS: [&str; 4] = ["table2", "table3a", "tablea6", "fig3"];

#[test]
fn artifacts_are_byte_identical_across_worker_counts() {
    // Telemetry off: the baseline bytes. The sharded embedding trainers
    // read the same pool size as the kernels, so pin it per leg.
    let lab1 = Lab::new(LabConfig::tiny());
    let (seq, r1) = {
        let _g = kcb_util::pool::ThreadsGuard::new(1);
        run_scheduled(&lab1, &IDS, 1)
    };

    // Telemetry on for the parallel leg — recording must be invisible to
    // the artifact pipeline.
    kcb_obs::reset();
    kcb_obs::set_enabled(true);
    let lab4 = Lab::new(LabConfig::tiny());
    let (par, r4) = {
        let _g = kcb_util::pool::ThreadsGuard::new(4);
        run_scheduled(&lab4, &IDS, 4)
    };
    kcb_obs::set_enabled(false);
    let telemetry = kcb_obs::drain();

    // The trained embedding *stores* — not just the artifacts computed
    // from them — are byte-identical across thread counts: the sharded
    // trainers fix their shard structure independently of the pool size.
    for (name, t1, t4) in [
        ("w2v-chem", lab1.w2v_chem(), lab4.w2v_chem()),
        ("glove", lab1.glove(), lab4.glove()),
        ("glove-chem", lab1.glove_chem(), lab4.glove_chem()),
    ] {
        assert_eq!(
            kcb_embed::store::to_bytes(t1).to_vec(),
            kcb_embed::store::to_bytes(t4).to_vec(),
            "{name} store bytes differ across thread counts"
        );
    }
    assert_eq!(
        kcb_embed::store::fasttext_to_bytes(lab1.biowordvec()),
        kcb_embed::store::fasttext_to_bytes(lab4.biowordvec()),
        "biowordvec store bytes differ across thread counts"
    );

    assert_eq!(r1.scheduler.workers, 1);
    assert_eq!(r4.scheduler.workers, 4);
    assert_eq!(seq.len(), IDS.len(), "all artifacts produced sequentially");
    assert_eq!(par.len(), IDS.len(), "all artifacts produced in parallel");

    for ((id1, a1), (id4, a4)) in seq.iter().zip(&par) {
        assert_eq!(id1, id4, "artifact order is canonical");
        assert_eq!(a1.render(), a4.render(), "rendered text differs for {id1}");
        assert_eq!(
            serde_json::to_string_pretty(&a1.json).expect("serializable"),
            serde_json::to_string_pretty(&a4.json).expect("serializable"),
            "json payload differs for {id1}"
        );
    }

    for report in [&r1, &r4] {
        // Every job ran and was timed; labels are unique (cells shared by
        // several artifacts exist once).
        let labels: Vec<&str> =
            report.scheduler.jobs.iter().map(|j| j.label.as_str()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(labels.len(), dedup.len(), "duplicate job labels");
        assert!(labels.iter().any(|l| l.starts_with("provider:")));
        assert!(labels.iter().any(|l| l.starts_with("cell:forest|")));
        assert!(labels.iter().any(|l| l.starts_with("cell:rf|")));
        assert!(labels.iter().any(|l| l.starts_with("cell:ft|")));
        assert!(labels.iter().any(|l| l.starts_with("artifact:")));
        // The assembly pass re-queried the warmed caches.
        assert!(report.cache.memo_hits > 0, "assembly must hit the memo cache");
        assert!(report.encoding_hits > 0, "assembly must hit the encoding cache");
        assert!(report.scheduler.wall_seconds > 0.0);
    }
    assert_eq!(
        r1.scheduler.jobs.len(),
        r4.scheduler.jobs.len(),
        "same DAG regardless of worker count"
    );

    // The recording that ran alongside the parallel leg covered every
    // scheduled job: one span per job label, tagged with its category.
    let span_names: Vec<&str> = telemetry.spans.iter().map(|s| s.name.as_str()).collect();
    for j in &r4.scheduler.jobs {
        assert!(
            span_names.contains(&j.label.as_str()),
            "job {} has no telemetry span",
            j.label
        );
    }
    assert!(
        telemetry.spans.iter().all(|s| !s.cat.is_empty()),
        "every span carries a category"
    );
    // The training loops inside the cells published their loss series.
    assert!(
        telemetry.series.keys().any(|k| k.starts_with("lm.")),
        "LM training series missing: {:?}",
        telemetry.series.keys().collect::<Vec<_>>()
    );
}
