//! Invariants of the scheduler's [`RunReport`] on synthetic graphs: every
//! job is timed with `end >= start`, summed self-times never exceed
//! `wall * workers` (the report cannot claim more CPU than existed), and
//! single-worker runs never steal.

use kcb_core::sched::{Graph, RunReport};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

/// A diamond of parallel jobs with measurable sleeps plus a driver sink.
fn diamond(counter: &AtomicUsize) -> Graph<'_> {
    let mut g = Graph::new();
    let root = g.add_par("provider:root", &[], move || {
        std::thread::sleep(Duration::from_millis(5));
        counter.fetch_add(1, Ordering::Relaxed);
    });
    let mut mids = Vec::new();
    for i in 0..6 {
        mids.push(g.add_par(format!("cell:mid|{i}"), &[root], move || {
            std::thread::sleep(Duration::from_millis(5));
            counter.fetch_add(1, Ordering::Relaxed);
        }));
    }
    g.add_driver("artifact:sink", &mids, move || {
        std::thread::sleep(Duration::from_millis(2));
        counter.fetch_add(1, Ordering::Relaxed);
    });
    g
}

fn check_common(r: &RunReport, jobs: usize) {
    assert_eq!(r.jobs.len(), jobs, "every pushed job is reported");
    assert!(r.wall_seconds > 0.0);
    for j in &r.jobs {
        assert!(j.end >= j.start, "{}: end {} < start {}", j.label, j.end, j.start);
        assert!(j.start >= 0.0, "{}: negative start {}", j.label, j.start);
        assert!(
            j.end <= r.wall_seconds + 1e-6,
            "{}: end {} past wall {}",
            j.label,
            j.end,
            r.wall_seconds
        );
        assert!(
            (j.seconds - (j.end - j.start)).abs() < 1e-9,
            "{}: seconds {} != end - start",
            j.label,
            j.seconds
        );
        assert!(j.worker < r.workers, "{}: worker {} out of range", j.label, j.worker);
    }
    // The report cannot account for more CPU-time than workers * wall.
    let busy: f64 = r.jobs.iter().map(|j| j.seconds).sum();
    assert!(
        busy <= r.wall_seconds * r.workers as f64 + 1e-6,
        "self-times {busy} exceed {} workers x {} wall",
        r.workers,
        r.wall_seconds
    );
}

#[test]
fn single_worker_runs_in_push_order_without_steals() {
    let counter = AtomicUsize::new(0);
    let g = diamond(&counter);
    let jobs = g.len();
    let r = g.run(1);
    assert_eq!(counter.load(Ordering::Relaxed), jobs, "every closure ran");
    assert_eq!(r.workers, 1);
    assert_eq!(r.steals, 0, "one worker has nobody to steal from");
    check_common(&r, jobs);
    // Sequential execution: jobs never overlap and follow push order.
    for w in r.jobs.windows(2) {
        assert!(
            w[1].start >= w[0].end - 1e-9,
            "{} began before {} ended",
            w[1].label,
            w[0].label
        );
    }
    assert!(r.jobs.iter().all(|j| j.worker == 0));
}

#[test]
fn parallel_run_reports_every_job_within_capacity() {
    let counter = AtomicUsize::new(0);
    let g = diamond(&counter);
    let jobs = g.len();
    let r = g.run(4);
    assert_eq!(counter.load(Ordering::Relaxed), jobs, "every closure ran");
    assert_eq!(r.workers, 4);
    check_common(&r, jobs);
    // Dependencies are honoured in the report: the root finishes before
    // any dependent starts, and the driver sink runs last on worker 0.
    let root_end = r.jobs[0].end;
    for j in &r.jobs[1..] {
        assert!(j.start >= root_end - 1e-9, "{} overlapped its dependency", j.label);
    }
    let sink = r.jobs.last().expect("sink job");
    assert_eq!(sink.kind, "driver");
    assert_eq!(sink.worker, 0, "driver jobs run on the driver thread");
    assert!(r.jobs[..jobs - 1].iter().all(|j| sink.start >= j.end - 1e-9));
}

#[test]
fn empty_and_single_job_graphs_degrade_to_sequential() {
    let r = Graph::new().run(8);
    assert_eq!(r.workers, 1, "nothing to parallelise");
    assert_eq!(r.steals, 0);
    assert!(r.jobs.is_empty());

    let mut g = Graph::new();
    g.add_par("cell:only", &[], || {});
    let r = g.run(8);
    assert_eq!(r.workers, 1);
    assert_eq!(r.jobs.len(), 1);
    assert_eq!(r.jobs[0].worker, 0);
    assert!(r.jobs[0].end >= r.jobs[0].start);
}
