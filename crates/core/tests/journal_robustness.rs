//! The run journal's crash-safety contract, attacked from three sides:
//!
//! 1. a proptest round-trip of the self-verifying line codec (arbitrary
//!    labels, digests and timings survive encode → decode unchanged, and
//!    any single-bit flip is rejected);
//! 2. a crash matrix over a journal file — truncation at every byte
//!    offset and a bit flip in every tail position — asserting that
//!    replay always yields a clean *prefix* of the original records and
//!    warns (once) exactly when something was dropped;
//! 3. an end-to-end resume: a scheduled run killed mid-DAG by an injected
//!    panic fault, resumed from its journal, must produce byte-identical
//!    artifacts to an uninterrupted run — with at least one job replayed
//!    rather than re-executed.

use kcb_core::experiment::plan::{run_scheduled_with, JournalSpec};
use kcb_core::journal::{
    self, decode_record, encode_record, FaultAction, FaultPlan, JobRecord,
};
use kcb_core::lab::{Lab, LabConfig};
use proptest::prelude::*;

fn record(seq: u64, label: &str) -> JobRecord {
    JobRecord {
        seq,
        label: label.to_string(),
        kind: "par".to_string(),
        digest: journal::fnv64_hex(label.as_bytes()),
        seconds: 0.125 * (seq + 1) as f64,
        worker: seq % 3,
        inputs: vec![format!("cfg={seq:x}"), format!("dep-{seq}=-")],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn line_codec_round_trips_arbitrary_records(
        seq in any::<u64>(),
        label in "[a-zA-Z0-9:_|./\\\\\" -]{0,48}",
        kind_driver in any::<bool>(),
        digest in "[0-9a-f]{0,16}",
        seconds in 0.0f64..1e6,
        worker in any::<u64>(),
        inputs in prop::collection::vec("[a-zA-Z0-9:_|./\\\\\" =-]{0,24}", 0..4),
    ) {
        let rec = JobRecord {
            seq,
            label,
            kind: if kind_driver { "driver" } else { "par" }.to_string(),
            digest,
            seconds,
            worker,
            inputs,
        };
        let line = encode_record(&rec);
        prop_assert!(!line.contains('\n'), "framing must stay single-line");
        let back = decode_record(&line).expect("undamaged line decodes");
        prop_assert_eq!(back, rec);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        seq in any::<u64>(),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let rec = record(seq, "cell:forest|w2v-chem|d4");
        let mut bytes = encode_record(&rec).into_bytes();
        let idx = ((byte_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        bytes[idx] ^= 1 << bit;
        // The flipped line either fails to parse or fails its checksum —
        // it must never decode into a *different* valid record.
        if let Ok(s) = String::from_utf8(bytes) {
            if let Ok(back) = decode_record(&s) {
                prop_assert_eq!(back, rec, "a decodable flip must be semantically inert");
            }
        }
    }
}

/// A journal of `n` records written through the real [`journal::Writer`],
/// returned as raw bytes alongside the records.
fn written_journal(name: &str, n: u64) -> (std::path::PathBuf, Vec<u8>, Vec<JobRecord>) {
    let dir = std::env::temp_dir()
        .join(format!("kcb-journal-matrix-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let path = journal::journal_path(&dir);
    let w = journal::Writer::open(&path, 0).expect("open journal");
    let mut recs = Vec::new();
    for i in 0..n {
        let r = record(i, &format!("cell:rf|job{i}"));
        w.append(&r.label, &r.kind, &r.digest, r.seconds, r.worker as usize, &r.inputs);
        recs.push(r);
    }
    let bytes = std::fs::read(&path).expect("journal bytes");
    (path, bytes, recs)
}

/// Replay of damaged bytes must yield a clean prefix of the written
/// labels (never reordered, never invented) and warn iff data was lost.
fn assert_prefix(path: &std::path::Path, damaged: &[u8], originals: &[JobRecord], ctx: &str) {
    std::fs::write(path, damaged).expect("write damaged journal");
    let replay = journal::load(path);
    assert!(
        replay.records.len() <= originals.len(),
        "{ctx}: replay invented records ({} > {})",
        replay.records.len(),
        originals.len()
    );
    for (got, want) in replay.records.iter().zip(originals) {
        assert_eq!(got.label, want.label, "{ctx}: replay is not a prefix");
        assert_eq!(got.digest, want.digest, "{ctx}: digest changed in replay");
    }
    // Warning expectations depend on the damage type (a truncation at a
    // line boundary is a legitimate shorter journal), so the callers
    // assert those.
}

#[test]
fn truncation_at_every_offset_keeps_a_clean_prefix() {
    let (path, bytes, recs) = written_journal("trunc", 5);
    // Line boundaries: truncating exactly there is a shorter valid
    // journal (an fsync'd crash point), anywhere else is a torn line.
    let boundaries: Vec<usize> = bytes
        .iter()
        .enumerate()
        .filter_map(|(i, &b)| (b == b'\n').then_some(i + 1))
        .collect();
    assert_eq!(boundaries.len(), 5, "writer frames one line per record");
    for cut in 0..bytes.len() {
        assert_prefix(&path, &bytes[..cut], &recs, &format!("truncate@{cut}"));
        let replay = journal::load(&path);
        let whole_lines = boundaries.iter().filter(|&&b| b <= cut).count();
        assert_eq!(
            replay.records.len(),
            whole_lines,
            "truncate@{cut}: every fsync'd line before the cut must survive"
        );
        if cut > 0 && !boundaries.contains(&cut) {
            assert!(replay.warning.is_some(), "truncate@{cut}: torn tail must warn");
        }
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

#[test]
fn bit_flips_anywhere_in_the_tail_stop_replay_at_the_damage() {
    let (path, bytes, recs) = written_journal("flip", 4);
    let first_line_end = bytes.iter().position(|&b| b == b'\n').unwrap();
    // Flip one bit at every byte of the final two records; replay must
    // keep at most the records before the damaged line, and always at
    // least the untouched first line.
    let tail_start = bytes.len() / 2;
    for idx in tail_start..bytes.len() {
        for bit in [0u8, 3, 7] {
            let mut damaged = bytes.clone();
            damaged[idx] ^= 1 << bit;
            if damaged[idx] == b'\n' || bytes[idx] == b'\n' {
                continue; // splitting/merging lines is the truncation case
            }
            assert_prefix(&path, &damaged, &recs, &format!("flip@{idx}.{bit}"));
            let replay = journal::load(&path);
            assert!(
                !replay.records.is_empty() || first_line_end >= tail_start,
                "flip@{idx}.{bit}: damage in the tail must not kill the head"
            );
        }
    }
    let _ = std::fs::remove_dir_all(path.parent().unwrap());
}

/// Compact replay-JSON bytes of every artifact, the strongest equality
/// the journal promises across a crash.
fn artifact_bytes(arts: &[(String, kcb_core::report::Artifact)]) -> Vec<(String, String)> {
    arts.iter()
        .map(|(id, a)| (id.clone(), a.to_replay_json().render_json(None)))
        .collect()
}

#[test]
fn interrupted_run_resumes_to_byte_identical_artifacts() {
    const IDS: [&str; 2] = ["table2", "table3a"];
    let root = std::env::temp_dir()
        .join(format!("kcb-journal-resume-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let _g = kcb_util::pool::ThreadsGuard::new(1);

    // Reference: an uninterrupted journaled run.
    let lab = Lab::new(LabConfig::tiny());
    let cold_spec = JournalSpec { dir: root.join("cold"), fault: None };
    let (cold, cold_report) = run_scheduled_with(&lab, &IDS, 1, Some(&cold_spec));
    assert!(cold_report.journal.enabled && !cold_report.journal.resume);
    assert!(cold_report.journal.appended > 4, "reference run journals its jobs");

    // Crash leg: same config, fresh journal dir, killed two jobs short of
    // the finish line by the in-process fault action (the `panic` twin of
    // CI's `abort`) — deep enough into the DAG that cells, not just
    // providers, have committed.
    let after_jobs = cold_report.journal.appended - 2;
    let crash_spec = JournalSpec {
        dir: root.join("crash"),
        fault: Some(FaultPlan { after_jobs, action: FaultAction::Panic }),
    };
    let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let lab = Lab::new(LabConfig::tiny());
        run_scheduled_with(&lab, &IDS, 1, Some(&crash_spec));
    }));
    assert!(crashed.is_err(), "the injected fault must actually fire");
    let journaled = journal::load(&journal::journal_path(&crash_spec.dir));
    assert_eq!(
        journaled.records.len() as u64,
        after_jobs,
        "exactly the pre-fault jobs were fsync'd"
    );
    assert!(journaled.warning.is_none(), "a clean crash leaves no torn line");

    // Resume: a fresh process image (new lab, cold caches) over the same
    // journal finishes the DAG and replays what already committed.
    let resume_spec = JournalSpec { dir: crash_spec.dir.clone(), fault: None };
    let lab = Lab::new(LabConfig::tiny());
    let (resumed, report) = run_scheduled_with(&lab, &IDS, 1, Some(&resume_spec));
    assert!(report.journal.resume, "resume must be detected");
    assert!(report.journal.replayed > 0, "journaled jobs must be satisfied, not re-run");
    assert_eq!(report.journal.warnings, 0);

    assert_eq!(
        artifact_bytes(&cold),
        artifact_bytes(&resumed),
        "resumed artifacts must be byte-identical to the uninterrupted run"
    );
    for ((id_c, a_c), (id_r, a_r)) in cold.iter().zip(&resumed) {
        assert_eq!(id_c, id_r);
        assert_eq!(a_c.render(), a_r.render(), "rendered text differs for {id_c}");
    }

    // A second resume over the now-complete journal replays *everything*
    // — including the artifacts themselves, straight from disk.
    let lab = Lab::new(LabConfig::tiny());
    let (warm, warm_report) = run_scheduled_with(&lab, &IDS, 1, Some(&resume_spec));
    assert_eq!(artifact_bytes(&cold), artifact_bytes(&warm));
    assert!(
        warm_report.journal.replayed >= IDS.len() as u64,
        "complete journal should replay at least every artifact"
    );

    let _ = std::fs::remove_dir_all(&root);
}
