//! Quickstart: generate a ChEBI-like ontology, build a curation task,
//! train one supervised model and evaluate it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use kcb::core::adapt::Adaptation;
use kcb::core::compose::TokenAvgEncoder;
use kcb::core::dataset::Split;
use kcb::core::paradigm::ml::run_forest_split;
use kcb::core::task::{TaskDataset, TaskKind};
use kcb::embed::{word2vec, EmbeddingModel};
use kcb::ml::RandomForestConfig;
use kcb::ontology::{SyntheticConfig, SyntheticGenerator};
use kcb::text::corpus::tokenize_corpus;
use kcb::text::{ChemTokenizer, CorpusConfig, DomainCorpusGenerator};

fn main() {
    // 1. A synthetic ChEBI-like ontology (~1% of real ChEBI here).
    let ontology = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 7 })
        .expect("valid config")
        .generate();
    println!(
        "ontology: {} entities, {} triples",
        ontology.n_entities(),
        ontology.n_triples()
    );
    println!("example triple: {}", ontology.render(ontology.triples()[0]));

    // 2. Curation task 1 (true vs random-negative triples) with a 9:1
    //    stratified split.
    let dataset = TaskDataset::generate(&ontology, TaskKind::RandomNegatives, 7);
    let split = Split::nine_to_one(&dataset, 7);
    println!(
        "task 1: {} examples ({} train / {} test)",
        dataset.len(),
        split.train.len(),
        split.test.len()
    );

    // 3. Domain embeddings: word2vec trained from scratch on a synthetic
    //    chemistry corpus verbalised from the ontology (the paper's
    //    W2V-Chem).
    let corpus_cfg = CorpusConfig { n_docs: 250, seed: 7, ..CorpusConfig::default() };
    let docs = DomainCorpusGenerator::new(&ontology, corpus_cfg).generate();
    let sentences = tokenize_corpus(&docs, &ChemTokenizer::new());
    let w2v = word2vec::train(
        "w2v-chem",
        &sentences,
        &word2vec::Word2VecConfig { dim: 32, epochs: 3, ..word2vec::Word2VecConfig::default() },
    );
    println!("w2v-chem: {} tokens embedded", w2v.vocab_size());

    // 4. Algorithm 1: triples → averaged-concat vectors (with the naive
    //    token adaptation) → random forest.
    let encoder = TokenAvgEncoder::new(&w2v, Adaptation::Naive);
    let rf = RandomForestConfig { n_trees: 30, ..RandomForestConfig::default() };
    let run = run_forest_split(&ontology, &split, &encoder, &rf);

    println!("\nrandom forest on {}:", run.encoder_name);
    println!("  accuracy  {:.4}", run.metrics.accuracy);
    println!("  precision {:.4}", run.metrics.precision);
    println!("  recall    {:.4}", run.metrics.recall);
    println!("  F1        {:.4}", run.metrics.f1);

    let mass = run.importance_by_component();
    println!(
        "feature importance mass — head {:.2}, relation {:.2}, tail {:.2}",
        mass[0], mass[1], mass[2]
    );
}
