//! The full three-paradigm comparison on one task — a miniature of the
//! paper's Table 6 head-to-head.
//!
//! ```sh
//! cargo run --release --example curation_pipeline
//! ```

use kcb::core::experiment;
use kcb::core::lab::{Lab, LabConfig};
use kcb::core::paradigm::icl::{split_prompt_setup, QueryPolicy};
use kcb::core::task::TaskKind;
use kcb::icl::{run_protocol, LlmOracle, OracleProfile, PromptVariant};

fn main() {
    // The Lab owns every trained component and builds each exactly once.
    // `tiny()` keeps this example in the seconds range; use
    // `LabConfig::default()` (or the repro binary) for the real runs.
    let lab = Lab::new(LabConfig::tiny());
    let task = TaskKind::FlippedNegatives; // task 2: wrong-direction triples

    println!("== paradigm 3: supervised learning =======================");
    for (model, adapt) in [("random", "naive"), ("w2v-chem", "naive"), ("pubmedbert", "none")] {
        let run = lab.forest_run(task, model, adapt);
        println!("  RF + {:24}  F1 {:.4}", format!("{model}/{adapt}"), run.metrics.f1);
    }

    println!("\n== paradigm 2: fine-tuning ================================");
    let artifact = experiment::run(&lab, "table4").expect("table4 exists");
    // Print only the requested task's row from the JSON payload.
    for row in artifact.json.as_array().unwrap() {
        if row["task"] == task.number() as u64 {
            println!(
                "  fine-tuned mini-BERT        F1 {:.4} (train {}, test {})",
                row["f1"].as_f64().unwrap(),
                row["train"],
                row["test"]
            );
        }
    }

    println!("\n== paradigm 1: in-context learning ========================");
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(task),
        QueryPolicy { n_per_class: 20, ..QueryPolicy::default() },
        1,
    );
    for profile in [OracleProfile::gpt35_sim(), OracleProfile::gpt4_sim()] {
        let oracle = LlmOracle::new(profile);
        let r = run_protocol(&oracle, &builder, &items, PromptVariant::Base, 3, 1);
        println!(
            "  {:26}  accuracy {:.4}  F1 {:.4}  kappa {:.2}",
            r.model, r.accuracy_mean, r.f1_mean, r.kappa
        );
    }
    let biogpt = lab.biogpt();
    let r = run_protocol(biogpt, &builder, &items, PromptVariant::Base, 3, 1);
    println!(
        "  {:26}  accuracy {:.4}  F1 {:.4}  kappa {:.2}  ({} unclassified)",
        "biogpt-mini (generative)", r.accuracy_mean, r.f1_mean, r.kappa, r.n_unclassified
    );

    println!("\nThe paper's task-2 finding should be visible: supervised and");
    println!("fine-tuned models handle relation direction; ICL never catches up.");
}
