//! Prompt playground: inspect the three prompt formulations, raw model
//! responses and how the parser scores them.
//!
//! ```sh
//! cargo run --release --example prompt_playground
//! ```

use kcb::core::lab::{Lab, LabConfig};
use kcb::core::paradigm::icl::{split_prompt_setup, QueryPolicy};
use kcb::core::task::TaskKind;
use kcb::icl::{parse_response, LlmOracle, OracleProfile, PromptContext, PromptVariant, PromptedModel};
use kcb::util::Rng;

fn main() {
    let lab = Lab::new(LabConfig::tiny());
    let (builder, items) = split_prompt_setup(
        lab.ontology(),
        lab.split(TaskKind::RandomNegatives),
        QueryPolicy { n_per_class: 3, ..QueryPolicy::default() },
        3,
    );
    let item = &items[0];

    // --- The three prompt formulations of Table 1 -----------------------
    for variant in PromptVariant::ALL {
        let mut rng = Rng::seed(1);
        let text = builder.render(&item.text, variant, &mut rng);
        println!("──── prompt variant {} ────", variant.label());
        println!("{text}\n");
    }

    // --- Ask each model and parse its raw response -----------------------
    let gpt4 = LlmOracle::new(OracleProfile::gpt4_sim());
    let gpt35 = LlmOracle::new(OracleProfile::gpt35_sim());
    let biogpt = lab.biogpt();
    let models: [&dyn PromptedModel; 3] = [&gpt4, &gpt35, biogpt];

    println!("──── responses ────");
    for variant in PromptVariant::ALL {
        println!("variant {}:", variant.label());
        for item in items.iter().take(3) {
            let mut rng = Rng::seed(2);
            let prompt_text = builder.render(&item.text, variant, &mut rng);
            for model in models {
                let ctx = PromptContext {
                    prompt_text: &prompt_text,
                    query_text: &item.text,
                    truth: item.label,
                    task: item.task,
                    variant,
                    key: item.key,
                    repeat: 0,
                };
                let raw = model.respond(&ctx, &mut rng);
                let parsed = parse_response(&raw);
                println!(
                    "  {:12} truth={:5}  parsed={:<12} raw={:?}",
                    model.name(),
                    item.label,
                    format!("{parsed:?}"),
                    truncate(&raw, 48),
                );
            }
        }
        println!();
    }
    println!("note: biogpt-mini is a real generative model — its responses are");
    println!("decoded WordPiece continuations, usually unparseable, exactly like");
    println!("the paper's BioGPT findings (kappa ~ 0, ~20% unclassified).");
}

fn truncate(s: &str, n: usize) -> String {
    if s.chars().count() <= n {
        s.to_string()
    } else {
        let cut: String = s.chars().take(n).collect();
        format!("{cut}…")
    }
}
