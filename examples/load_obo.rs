//! Drop-in real data: load an OBO export (e.g. a real ChEBI dump) and run
//! the curation-task machinery on it unchanged.
//!
//! ```sh
//! cargo run --release --example load_obo -- path/to/chebi.obo
//! cargo run --release --example load_obo          # self-demo on a synthetic export
//! ```
//!
//! Only `[Term]` stanzas with `id`/`name`/`is_a`/`relationship` lines are
//! needed; everything else is skipped. Unknown relationship types are
//! ignored, so a full ChEBI export parses as-is.

use kcb::core::task::{TaskDataset, TaskKind};
use kcb::ontology::{obo, validate, OntologyStats, SyntheticConfig, SyntheticGenerator};

fn main() {
    let path = std::env::args().nth(1);
    let ontology = match &path {
        Some(p) => {
            println!("loading OBO from {p} ...");
            let file = std::fs::File::open(p).expect("cannot open OBO file");
            obo::read(std::io::BufReader::new(file)).expect("cannot parse OBO")
        }
        None => {
            println!("no OBO path given — demonstrating a synthetic round trip");
            let generated = SyntheticGenerator::new(SyntheticConfig { scale: 0.008, seed: 3 })
                .expect("valid config")
                .generate();
            let mut buf = Vec::new();
            obo::write(&generated, &mut buf).expect("OBO export");
            println!("exported {} bytes of OBO; re-importing ...", buf.len());
            obo::read(std::io::Cursor::new(&buf)).expect("re-import")
        }
    };

    if ontology.n_entities() == 0 {
        eprintln!("warning: no [Term] stanzas found — is this really an OBO file?");
    }

    // Structural health check before trusting the graph.
    let report = validate::validate(&ontology);
    if report.is_clean() {
        println!("validation: clean");
    } else {
        println!("validation: {} issue(s), e.g. {:?}", report.issues.len(), report.issues.first());
    }

    let stats = OntologyStats::compute(&ontology);
    print!("{}", stats.subontology_table().render());
    print!("{}", stats.relation_table().render());

    // The task machinery is data-source agnostic.
    for task in TaskKind::ALL {
        let d = TaskDataset::generate(&ontology, task, 1);
        println!(
            "task {} ({}): {} positives, {} negatives",
            task.number(),
            task.describe(),
            d.n_positive(),
            d.n_negative()
        );
    }
}
