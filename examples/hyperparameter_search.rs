//! Hyperparameter optimisation the paper's way: 5-fold stratified
//! cross-validation over a random-forest grid, optimised for F1 (§2.6 and
//! the Appendix grid), then a final fit with the winning configuration.
//!
//! ```sh
//! cargo run --release --example hyperparameter_search
//! ```

use kcb::core::adapt::Adaptation;
use kcb::core::compose::{dataset_matrix, TokenAvgEncoder};
use kcb::core::dataset::Split;
use kcb::core::task::{TaskDataset, TaskKind};
use kcb::embed::RandomEmbedding;
use kcb::ml::metrics::BinaryMetrics;
use kcb::ml::model_select::{cv_f1_forest, ForestGrid};
use kcb::ml::{RandomForest, RandomForestConfig};
use kcb::ontology::{SyntheticConfig, SyntheticGenerator};

fn main() {
    let ontology = SyntheticGenerator::new(SyntheticConfig { scale: 0.008, seed: 13 })
        .expect("valid config")
        .generate();
    let dataset = TaskDataset::generate(&ontology, TaskKind::RandomNegatives, 13);
    let split = Split::nine_to_one(&dataset, 13);

    // Featurise once (random embeddings keep this example dependency-free
    // and fast; swap in any trained model).
    let model = RandomEmbedding::with_dim(32);
    let enc = TokenAvgEncoder::new(&model, Adaptation::Naive);
    let cap = split.train.len().min(2_000);
    let (x, y) = dataset_matrix(&ontology, &split.train[..cap], &enc);
    println!("search data: {} rows × {} features", x.rows(), x.cols());

    // The grid (a compact version of the paper's Appendix Table A7 grid).
    let grid = ForestGrid {
        n_trees: vec![10, 30],
        max_depth: vec![8, 16, 24],
        min_samples_leaf: vec![1, 4],
    };
    let base = RandomForestConfig::default();

    println!("\n5-fold CV over {} configurations:", grid.configurations(&base).len());
    for cfg in grid.configurations(&base) {
        let score = cv_f1_forest(&x, &y, &cfg, 5);
        println!(
            "  trees={:3} depth={:2} leaf={} -> CV F1 {score:.4}",
            cfg.n_trees, cfg.max_depth, cfg.min_samples_leaf
        );
    }

    let (best, best_score) = grid.search(&x, &y, &base, 5);
    println!(
        "\nwinner: trees={} depth={} leaf={} (CV F1 {best_score:.4})",
        best.n_trees, best.max_depth, best.min_samples_leaf
    );

    // Final fit on all training data, honest evaluation on the test split.
    let forest = RandomForest::fit(&x, &y, &best);
    let (xt, yt) = dataset_matrix(&ontology, &split.test, &enc);
    let preds = forest.predict_batch(&xt);
    let m = BinaryMetrics::from_predictions(&preds, &yt);
    println!("held-out test: accuracy {:.4}, F1 {:.4}", m.accuracy, m.f1);
}
