//! Ontology audit: the library as a curator's assistant.
//!
//! The paper's motivating scenario — a curator wants to find *erroneous*
//! triples in a knowledge graph. Here we corrupt a fraction of a synthetic
//! ontology's edges (object swapped for a sibling, the hardest corruption),
//! train a curation model on clean task-3 data, then rank the live graph's
//! triples by predicted wrongness and measure how many injected errors
//! surface in the top of the ranking.
//!
//! ```sh
//! cargo run --release --example ontology_audit
//! ```

use kcb::core::adapt::Adaptation;
use kcb::core::compose::{triple_vector, TokenAvgEncoder};
use kcb::core::dataset::Split;
use kcb::core::task::{TaskDataset, TaskKind};
use kcb::embed::word2vec;
use kcb::ml::{RandomForest, RandomForestConfig};
use kcb::ontology::{SyntheticConfig, SyntheticGenerator, Triple};
use kcb::text::corpus::tokenize_corpus;
use kcb::text::{ChemTokenizer, CorpusConfig, DomainCorpusGenerator};
use kcb::util::Rng;

fn main() {
    let ontology = SyntheticGenerator::new(SyntheticConfig { scale: 0.01, seed: 11 })
        .expect("valid config")
        .generate();

    // --- Simulate curation debt: corrupt 5% of triples -----------------
    let mut rng = Rng::seed(11);
    let mut audit_set: Vec<(Triple, bool)> = Vec::new(); // (triple, is_corrupted)
    for &t in ontology.triples() {
        if rng.chance(0.05) {
            let sibs = ontology.siblings(t.object);
            if let Some(&bad) = rng.choose(&sibs) {
                let corrupted = t.with_object(bad);
                if !ontology.holds(corrupted) {
                    audit_set.push((corrupted, true));
                    continue;
                }
            }
        }
        audit_set.push((t, false));
    }
    let n_bad = audit_set.iter().filter(|(_, bad)| *bad).count();
    println!("audit set: {} triples, {} corrupted", audit_set.len(), n_bad);

    // --- Train a task-3 curation model ----------------------------------
    let corpus_cfg = CorpusConfig { n_docs: 250, seed: 11, ..CorpusConfig::default() };
    let docs = DomainCorpusGenerator::new(&ontology, corpus_cfg).generate();
    let sentences = tokenize_corpus(&docs, &ChemTokenizer::new());
    let w2v = word2vec::train(
        "w2v-chem",
        &sentences,
        &word2vec::Word2VecConfig { dim: 32, epochs: 3, ..word2vec::Word2VecConfig::default() },
    );
    let encoder = TokenAvgEncoder::new(&w2v, Adaptation::Naive);

    let dataset = TaskDataset::generate(&ontology, TaskKind::SiblingNegatives, 11);
    let split = Split::nine_to_one(&dataset, 11);
    let (x, y) = kcb::core::compose::dataset_matrix(&ontology, &split.train, &encoder);
    let forest = RandomForest::fit(
        &x,
        &y,
        &RandomForestConfig { n_trees: 30, ..RandomForestConfig::default() },
    );

    // --- Rank the audit set by predicted wrongness ------------------------
    let mut scored: Vec<(f32, bool, Triple)> = audit_set
        .iter()
        .map(|&(t, bad)| {
            let v = triple_vector(&ontology, t, &encoder);
            (1.0 - forest.predict_proba(&v), bad, t) // high = suspicious
        })
        .collect();
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("no NaN scores"));

    // Precision-at-k of the suspect ranking.
    println!("\ncurator work-list quality (corrupted triples found in top-k):");
    for k in [n_bad / 2, n_bad, n_bad * 2] {
        let hits = scored[..k.min(scored.len())].iter().filter(|(_, bad, _)| *bad).count();
        println!(
            "  top-{k:5}: {hits:4} / {:4} injected errors ({:.0}% precision)",
            n_bad,
            100.0 * hits as f64 / k.max(1) as f64
        );
    }
    let baseline = n_bad as f64 / audit_set.len() as f64;
    println!("  random work-list precision would be {:.0}%", baseline * 100.0);

    println!("\nmost suspicious triples:");
    for (score, bad, t) in scored.iter().take(5) {
        println!(
            "  [{:.2}] {} {}",
            score,
            ontology.render(*t),
            if *bad { "<- injected error" } else { "" }
        );
    }
}
